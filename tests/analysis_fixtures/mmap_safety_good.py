# Passing fixture for mmap-write-safety: copy-before-write and
# non-model stores.
# lint-fixture-module: repro.serving.fixture_mmap_good
import numpy as np


def patched_scores(model, idx, value):
    local = np.array(model.weights)     # copy first
    local[idx] = value                  # then mutate the copy
    return local


def overlay(pending, item_id, phrases):
    pending[item_id] = phrases          # store-side delta, not the map


def reprotect(arr):
    arr.setflags(write=False)           # tightening is fine
    return arr
