# Failing fixture for the async-no-blocking rule: every construct a
# reviewer has actually caught on this codebase's event loops.
# lint-fixture-module: repro.serving.fixture_async_bad
import shutil
import tempfile
import time


async def handler(store, fut):
    time.sleep(0.1)                       # sleeps the whole loop
    payload = open("/tmp/payload").read()  # blocking file open
    with transaction_lock(store):          # unbounded lock wait
        pass
    value = fut.result()                   # concurrent.futures join
    spool = tempfile.mkdtemp()             # filesystem metadata write
    shutil.rmtree(spool)                   # filesystem teardown
    return payload, value
