# Passing fixture for monotonic-clock: interval arithmetic on
# monotonic sources only (plus an explicitly waived operator-facing
# timestamp).
# lint-fixture-module: repro.cluster.fixture_clocks_good
import time


def deadline_expired(started_at, timeout):
    return time.monotonic() - started_at > timeout


async def window_deadline(loop, window_seconds):
    return loop.time() + window_seconds


def report_stamp():
    # lint: waive monotonic-clock: operator-facing report timestamp, not a timer
    return time.time()
# lint-fixture-module: repro.obs.fixture_clocks_good
import time


def span_duration(started_at):
    return time.perf_counter() - started_at


def staleness(loaded_at):
    return time.monotonic() - loaded_at
