# Failing fixture for lazy-import-contract, three ways to break it:
# a module-level cycle, a declared-lazy edge imported eagerly, and a
# stale declaration (fix.stale lazily imports nothing).  The self-test
# instantiates the rule with declared lazy edges
# (fix.eager -> fix.util) and (fix.stale -> fix.util).
# lint-fixture-module: fix.a
from . import b


def use():
    return b
# lint-fixture-module: fix.b
from . import a


def use():
    return a
# lint-fixture-module: fix.util
VALUE = 1
# lint-fixture-module: fix.eager
from .util import VALUE


def use():
    return VALUE
# lint-fixture-module: fix.stale
def use():
    return 1
