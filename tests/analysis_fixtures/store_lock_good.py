# Passing fixture for store-lock-discipline: the transaction pattern,
# the caller-locked waiver, and shapes that must not count.
# lint-fixture-module: repro.serving.fixture_store_good


def swap_locked(store, version, items):
    with transaction_lock(store):
        store.create_version(version)
        for item_id, phrases in items:
            store.put(version, item_id, phrases)
        store.promote(version)


# lint: caller-locked: flush() enters transaction_lock before delegating here
def _fill(store, version, items):
    for item_id, phrases in items:
        store.put(version, item_id, phrases)
    store.prune(version)


def single_mutation(store, version):
    store.promote(version)  # one call needs no transaction


async def queue_user(queue, item):
    # dict/queue homonyms on non-store receivers must not count
    await queue.put(item)
    cache = {}
    cache.update(item=1)
    return queue
