# Failing fixture for no-pickle-boundary: pickle at the wire boundary.
# lint-fixture-module: repro.cluster.fixture_pickle_bad
import pickle
from pickle import loads


def encode_shard(payload):
    return pickle.dumps(payload)


def decode_shard(data):
    return loads(data)
