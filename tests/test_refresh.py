"""Tests for the daily refresh orchestrator (construct → load → swap).

The Figure 7 daily loop end to end: a new model is constructed through
the fast builder, the batch table is fully re-loaded and atomically
promoted, and every registered NRT serving target — sync services and
live asyncio fronts alike — is hot-swapped at a window boundary, all
stamped with one shared generation number.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import (
    AsyncNRTFront,
    BatchPipeline,
    DailyRefreshOrchestrator,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
    NRTService,
)
from tests.conftest import (FIG3_LEAF_ID, build_fig3_curated,
                            build_fig3_variant_curated)

REQUESTS = [
    (1, "audeze maxwell gaming headphones", FIG3_LEAF_ID),
    (2, "bluetooth wireless headphones new", FIG3_LEAF_ID),
]


def make_event(item_id: int, ts: float,
               title: str = "audeze maxwell gaming headphones"
               ) -> ItemEvent:
    return ItemEvent(kind=ItemEventKind.CREATED, item_id=item_id,
                     title=title, leaf_id=FIG3_LEAF_ID, timestamp=ts)


class TestDailyRefreshOrchestrator:
    def test_register_requires_refresh_model(self, fig3_model):
        orchestrator = DailyRefreshOrchestrator(BatchPipeline(fig3_model))
        with pytest.raises(TypeError, match="refresh_model"):
            orchestrator.register(object())
        assert orchestrator.targets == []

    def test_refresh_deploys_one_generation_across_the_stack(
            self, fig3_model, fig3_variant_model):
        """One refresh retargets the pipeline AND a registered sync
        service, reloads the batch table under the new model, and
        stamps the same generation everywhere."""
        store = KeyValueStore()
        pipeline = BatchPipeline(fig3_model, store=store)
        pipeline.full_load(REQUESTS)
        service = NRTService(fig3_model, store, window_size=1)
        orchestrator = DailyRefreshOrchestrator(pipeline)
        assert orchestrator.register(service) is service

        report = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                           REQUESTS)
        assert report.generation == 1 == orchestrator.generation
        assert pipeline.model_generation == 1
        assert service.model_generation == 1
        assert pipeline.model is service.model is orchestrator.model
        assert report.n_targets == 1
        assert report.n_inferred == len(REQUESTS)
        assert report.n_served == len(REQUESTS)

        # The batch table was re-inferred under the new model.
        clean_pipeline = BatchPipeline(fig3_variant_model)
        clean_pipeline.full_load(REQUESTS)
        for item_id, _title, _leaf in REQUESTS:
            assert pipeline.serve(item_id) == clean_pipeline.serve(item_id)

        # The NRT edge now infers under the new model, stamped with the
        # orchestrator's generation.
        service.submit(make_event(9, 0.0))
        clean = NRTService(fig3_variant_model, KeyValueStore(),
                           window_size=1)
        clean.submit(make_event(9, 0.0))
        assert service.serve(9) == clean.serve(9)
        assert service.processed_windows[-1].model_generation == 1

    def test_refresh_with_artifact_dir_persists_and_maps(
            self, fig3_model, fig3_variant_model, tmp_path):
        """ISSUE 6: with ``artifact_dir`` set the orchestrator writes a
        format-3 artifact per refresh and deploys its *mapped* open —
        one physical copy behind the pipeline and every target, with
        the artifact path reported for other hosts to open."""
        from repro.core.serialization import load_model

        store = KeyValueStore()
        pipeline = BatchPipeline(fig3_model, store=store)
        service = NRTService(fig3_model, store, window_size=1)
        orchestrator = DailyRefreshOrchestrator(
            pipeline, artifact_dir=tmp_path / "artifacts")
        orchestrator.register(service)

        report = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                           REQUESTS)
        assert report.artifact_path == str(
            tmp_path / "artifacts" / "gen-1")
        # Pipeline and service share the one mapped instance, whose
        # arrays are read-only views over the artifact file.
        assert pipeline.model is service.model
        leaf_id = pipeline.model.leaf_ids[0]
        assert pipeline.model.leaf_graph(leaf_id).graph.is_readonly
        # The artifact on disk reopens bit-identical and the served
        # table matches a clean in-memory deployment.
        reopened = load_model(report.artifact_path)
        clean = BatchPipeline(fig3_variant_model)
        clean.full_load(REQUESTS)
        for item_id, _title, _leaf in REQUESTS:
            assert pipeline.serve(item_id) == clean.serve(item_id)
        assert reopened.leaf_ids == pipeline.model.leaf_ids
        # A second refresh lands under the next generation's directory.
        second = orchestrator.refresh_sync(build_fig3_curated(),
                                           REQUESTS)
        assert second.artifact_path == str(
            tmp_path / "artifacts" / "gen-2")

    def test_refresh_without_artifact_dir_reports_no_path(
            self, fig3_model):
        pipeline = BatchPipeline(fig3_model)
        orchestrator = DailyRefreshOrchestrator(pipeline)
        report = orchestrator.refresh_sync(build_fig3_curated(),
                                           REQUESTS)
        assert report.artifact_path is None

    def test_successive_refreshes_increment_generation(self, fig3_model):
        pipeline = BatchPipeline(fig3_model)
        service = NRTService(fig3_model, pipeline.store, window_size=1)
        orchestrator = DailyRefreshOrchestrator(pipeline)
        orchestrator.register(service)
        first = orchestrator.refresh_sync(build_fig3_curated(), REQUESTS)
        second = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                           REQUESTS)
        assert (first.generation, second.generation) == (1, 2)
        assert orchestrator.generation == 2
        assert service.model_generation == 2
        service.submit(make_event(9, 0.0))
        assert service.processed_windows[-1].model_generation == 2

    def test_refresh_hot_swaps_running_front_mid_traffic(
            self, fig3_model, fig3_variant_model):
        """The zero-downtime path: a live AsyncNRTFront keeps serving
        while the orchestrator rebuilds + reloads behind it, then every
        stream is quiesced and swapped; traffic submitted afterwards is
        served by the new model."""

        async def drive():
            pipeline = BatchPipeline(fig3_model)
            pipeline.full_load(REQUESTS)
            front = AsyncNRTFront(fig3_model, window_size=2,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=30.0)
            front.add_stream("a")
            front.add_stream("b")
            orchestrator = DailyRefreshOrchestrator(pipeline)
            orchestrator.register(front)
            async with front:
                for name in ("a", "b"):
                    await front.submit(name, make_event(1, 0.0))
                report = await orchestrator.refresh(
                    build_fig3_variant_curated(), REQUESTS)
                for name in ("a", "b"):
                    await front.submit(name, make_event(50, 0.1))
            return front, report

        front, report = asyncio.run(drive())
        assert report.generation == 1
        assert front.model_generation == 1
        clean = NRTService(fig3_variant_model, KeyValueStore(),
                           window_size=1)
        clean.submit(make_event(50, 0.1))
        for name in ("a", "b"):
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert stats.n_submitted == 2          # zero loss
            assert sum(w.n_events
                       for w in front.processed_windows(name)) == 2
            assert front.serve(name, 50) == clean.serve(50)

    def test_orchestrator_issues_above_any_local_swap(
            self, fig3_model, fig3_variant_model):
        """A target hot-swapped directly between orchestrated refreshes
        does not desynchronize the numbering: the orchestrator issues a
        generation strictly above every deployment's local history, so
        each target adopts it verbatim and the class-docstring contract
        ``target.model_generation == report.generation`` holds."""
        pipeline = BatchPipeline(fig3_model)
        service = NRTService(fig3_model, pipeline.store, window_size=1)
        service.refresh_model(fig3_variant_model)   # local swap: gen 1
        orchestrator = DailyRefreshOrchestrator(pipeline)
        orchestrator.register(service)
        report = orchestrator.refresh_sync(build_fig3_curated(), REQUESTS)
        assert report.generation == 2               # strictly above 1
        assert service.model_generation == report.generation
        assert pipeline.model_generation == report.generation

    def test_failed_refresh_burns_its_generation_number(self, fig3_model):
        """A refresh that fails after construction consumed its
        generation number: the next successful refresh gets a fresh one,
        so a generation never names two different days' models."""

        class FlakyStore(KeyValueStore):
            fail_next = False

            def bulk_load(self, version, records):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("kv outage")
                super().bulk_load(version, records)

        store = FlakyStore()
        pipeline = BatchPipeline(fig3_model, store=store)
        service = NRTService(fig3_model, store, window_size=1)
        orchestrator = DailyRefreshOrchestrator(pipeline)
        orchestrator.register(service)
        store.fail_next = True
        with pytest.raises(RuntimeError, match="kv outage"):
            orchestrator.refresh_sync(build_fig3_curated(), REQUESTS)
        assert orchestrator.generation == 1     # burned
        assert service.model_generation == 0    # swap never reached
        report = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                           REQUESTS)
        assert report.generation == 2
        assert service.model_generation == 2
        assert pipeline.serve(REQUESTS[0][0])   # stack converged

    def test_full_load_waits_for_in_flight_flush_on_shared_store(
            self, fig3_model, fig3_variant_model):
        """Regression: the orchestrated full_load runs in an executor
        while a live front flushes the same store from another thread.
        Both writers now hold the store's transaction lock, so a window
        flush that started *before* the refresh can no longer promote a
        pre-refresh snapshot over the freshly loaded table."""
        import threading
        entered = threading.Event()

        def slow_enrich(event):
            entered.set()
            import time as _time
            _time.sleep(0.5)    # hold the store lock across the refresh
            return event.title

        async def drive():
            store = KeyValueStore()
            pipeline = BatchPipeline(fig3_model, store=store)
            pipeline.full_load(REQUESTS)
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=60.0,
                                  enrich=slow_enrich)
            front.add_stream("s", store=store)
            orchestrator = DailyRefreshOrchestrator(pipeline)
            orchestrator.register(front)
            async with front:
                await front.submit("s", make_event(999, 0.0))
                await front.join()
                flush_task = asyncio.create_task(front.flush_stream("s"))
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait)     # flush holds the lock now
                report = await orchestrator.refresh(
                    build_fig3_variant_curated(), REQUESTS)
                await flush_task
            return pipeline, report

        pipeline, report = asyncio.run(drive())
        assert report.generation == 1
        # The catalog serves the new model's output: the in-flight
        # old-model flush promoted BEFORE the full load, not after.
        clean = BatchPipeline(fig3_variant_model)
        clean.full_load(REQUESTS)
        for item_id, _title, _leaf in REQUESTS:
            assert pipeline.serve(item_id) == clean.serve(item_id)

    def test_refresh_forwards_construction_knobs(self, fig3_model):
        """builder/workers/parallel reach GraphExModel.construct: the
        reference builder produces a bit-identical deployment."""
        pipeline = BatchPipeline(fig3_model)
        fast = DailyRefreshOrchestrator(pipeline, builder="fast",
                                        workers=2)
        fast_report = fast.refresh_sync(build_fig3_variant_curated(),
                                        REQUESTS)
        reference = DailyRefreshOrchestrator(BatchPipeline(fig3_model),
                                             builder="reference")
        reference.refresh_sync(build_fig3_variant_curated(), REQUESTS)
        assert fast_report.generation == 1
        for item_id, _title, _leaf in REQUESTS:
            assert fast.pipeline.serve(item_id) \
                == reference.pipeline.serve(item_id)


class TestRefreshRetries:
    """ISSUE 7 satellite: the daily loop survives transient step
    failures through the shared cluster retry policy, and records an
    exhausted step on the report instead of aborting the cycle."""

    @staticmethod
    def make_policy(**overrides):
        from repro.cluster import RetryPolicy
        defaults = dict(max_attempts=3, base_delay=0.001,
                        max_delay=0.002, jitter=0.0, seed=0)
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def test_transient_construct_failure_is_retried_away(
            self, fig3_model, monkeypatch):
        from repro.core.model import GraphExModel
        real = GraphExModel.construct.__func__
        calls = []

        def flaky(curated, **kwargs):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient builder outage")
            return real(GraphExModel, curated, **kwargs)

        monkeypatch.setattr(GraphExModel, "construct", flaky)
        pipeline = BatchPipeline(fig3_model)
        orchestrator = DailyRefreshOrchestrator(
            pipeline, retry=self.make_policy(max_attempts=4))
        report = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                           REQUESTS)
        assert report.failure is None
        assert report.n_retries == 2
        assert report.generation == 1 == pipeline.model_generation
        assert len(calls) == 3

    def test_construct_exhaustion_reported_without_burning_generation(
            self, fig3_model, monkeypatch):
        from repro.core.model import GraphExModel
        real = GraphExModel.construct.__func__

        def doomed(curated, **kwargs):
            raise RuntimeError("builder down all day")

        monkeypatch.setattr(GraphExModel, "construct", doomed)
        pipeline = BatchPipeline(fig3_model)
        orchestrator = DailyRefreshOrchestrator(
            pipeline, retry=self.make_policy())
        report = orchestrator.refresh_sync(build_fig3_curated(),
                                           REQUESTS)
        assert report.failure is not None
        assert "construct exhausted 3 attempts" in report.failure
        assert "builder down all day" in report.failure
        assert report.n_retries == 2
        # No generation was burned: the next (healthy) cycle starts
        # clean at 1, and the stack never moved.
        assert orchestrator.generation == 0
        assert pipeline.model is fig3_model
        monkeypatch.setattr(GraphExModel, "construct", classmethod(real))
        healthy = orchestrator.refresh_sync(build_fig3_variant_curated(),
                                            REQUESTS)
        assert healthy.failure is None
        assert healthy.generation == 1

    def test_batch_load_exhaustion_burns_generation_and_reports(
            self, fig3_model):
        class DeadStore(KeyValueStore):
            def bulk_load(self, version, records):
                raise RuntimeError("kv outage")

        store = DeadStore()
        pipeline = BatchPipeline(fig3_model, store=store)
        service = NRTService(fig3_model, store, window_size=1)
        orchestrator = DailyRefreshOrchestrator(
            pipeline, retry=self.make_policy())
        orchestrator.register(service)
        report = orchestrator.refresh_sync(build_fig3_curated(),
                                           REQUESTS)
        assert report.failure is not None
        assert "batch load exhausted 3 attempts" in report.failure
        assert report.n_retries == 2
        # Construction succeeded, so this generation is burned — but
        # the target swaps were never reached.
        assert report.generation == 1 == orchestrator.generation
        assert service.model_generation == 0

    def test_without_a_policy_failures_propagate_as_before(
            self, fig3_model, monkeypatch):
        from repro.core.model import GraphExModel

        def doomed(curated, **kwargs):
            raise RuntimeError("builder down")

        monkeypatch.setattr(GraphExModel, "construct", doomed)
        orchestrator = DailyRefreshOrchestrator(BatchPipeline(fig3_model))
        with pytest.raises(RuntimeError, match="builder down"):
            orchestrator.refresh_sync(build_fig3_curated(), REQUESTS)


class TestRefreshClusterDeploy:
    """ISSUE 7 satellite: with a cluster attached, each refresh pushes
    the day's artifact to every executor host."""

    def test_cluster_requires_artifact_dir(self, fig3_model):
        from repro.cluster import ClusterCoordinator
        with pytest.raises(ValueError, match="artifact_dir"):
            DailyRefreshOrchestrator(BatchPipeline(fig3_model),
                                     cluster=ClusterCoordinator())

    def test_refresh_deploys_artifact_to_every_host(self, fig3_model,
                                                    tmp_path):
        from repro.cluster import ClusterCoordinator, ClusterWorker

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                workers = [ClusterWorker(coord.host, coord.port,
                                         name=f"host-{i}")
                           for i in range(2)]
                tasks = [asyncio.ensure_future(w.run()) for w in workers]
                await coord.wait_for_workers(2, timeout=10.0)
                orchestrator = DailyRefreshOrchestrator(
                    BatchPipeline(fig3_model),
                    artifact_dir=tmp_path / "artifacts", cluster=coord)
                report = await orchestrator.refresh(
                    build_fig3_variant_curated(), REQUESTS)
                await coord.stop()
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                return report

        report = asyncio.run(drive())
        assert report.failure is None
        assert report.n_remote_deployed == 2
        assert report.artifact_path == str(
            tmp_path / "artifacts" / "gen-1")
