"""Tests for the serving layer: KV store, batch pipeline, NRT service."""

from __future__ import annotations

import pytest

from repro.serving import (
    BatchPipeline,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
    NRTService,
)
from tests.conftest import FIG3_LEAF_ID, build_fig3_curated
from repro.core.model import GraphExModel


@pytest.fixture()
def model():
    return GraphExModel.construct(build_fig3_curated())


REQUESTS = [
    (1, "audeze maxwell gaming headphones", FIG3_LEAF_ID),
    (2, "bluetooth wireless headphones new", FIG3_LEAF_ID),
    (3, "no tokens in common here", FIG3_LEAF_ID),
]


class TestKeyValueStore:
    def test_reads_before_promotion_are_empty(self):
        store = KeyValueStore()
        version = store.create_version()
        store.put(version, 1, "x")
        assert store.get(1) is None

    def test_promotion_makes_data_visible(self):
        store = KeyValueStore()
        version = store.create_version()
        store.put(version, 1, "x")
        store.promote(version)
        assert store.get(1) == "x"

    def test_promote_unknown_version_raises(self):
        with pytest.raises(KeyError):
            KeyValueStore().promote(77)

    def test_serving_version_is_immutable(self):
        store = KeyValueStore()
        version = store.create_version()
        store.promote(version)
        with pytest.raises(ValueError):
            store.put(version, 1, "x")
        with pytest.raises(ValueError):
            store.bulk_load(version, {1: "x"})
        with pytest.raises(ValueError):
            store.delete(version, 1)

    def test_atomic_swap(self):
        store = KeyValueStore()
        v1 = store.create_version()
        store.bulk_load(v1, {1: "old"})
        store.promote(v1)
        v2 = store.create_version()
        store.bulk_load(v2, {1: "new"})
        assert store.get(1) == "old"  # still serving v1
        store.promote(v2)
        assert store.get(1) == "new"

    def test_copy_from_serving(self):
        store = KeyValueStore()
        v1 = store.create_version()
        store.bulk_load(v1, {1: "a", 2: "b"})
        store.promote(v1)
        v2 = store.create_version()
        store.copy_from_serving(v2)
        store.delete(v2, 1)
        store.promote(v2)
        assert store.get(1) is None
        assert store.get(2) == "b"

    def test_size_and_keys(self):
        store = KeyValueStore()
        assert store.size() == 0
        v = store.create_version()
        store.bulk_load(v, {1: "a", 2: "b"})
        store.promote(v)
        assert store.size() == 2
        assert sorted(store.keys()) == [1, 2]

    def test_prune_keeps_serving(self):
        store = KeyValueStore()
        versions = [store.create_version() for _ in range(5)]
        for version in versions:
            store.promote(version)   # each once-promoted: no open writers
        store.promote(versions[0])   # serving is the oldest
        store.prune(keep_latest=2)
        assert versions[0] in store.versions
        assert len(store.versions) <= 3

    def test_delete_absent_key_is_noop(self):
        """Documented contract: deleting a key that was never written
        (or already deleted) changes nothing and does not raise."""
        store = KeyValueStore()
        version = store.create_version()
        store.bulk_load(version, {1: "a"})
        store.delete(version, 99)
        store.delete(version, 1)
        store.delete(version, 1)  # already gone: still a no-op
        assert store.size(version) == 0

    def test_delete_unknown_version_raises_like_put(self):
        """Documented contract: an unknown *version* is a caller bug for
        both mutators, not a silent no-op."""
        store = KeyValueStore()
        with pytest.raises(KeyError):
            store.delete(77, 1)
        with pytest.raises(KeyError):
            store.put(77, 1, "x")

    def test_prune_exempts_open_staging_version(self):
        """Regression: ``prune(keep_latest=1)`` used to drop an open
        (created, never promoted) staging version a writer still held,
        so the writer's later ``put`` raised KeyError on a version id it
        was handed in good faith."""
        store = KeyValueStore()
        v1 = store.create_version()
        store.promote(v1)
        slow_writer = store.create_version()   # open staging
        v3 = store.create_version()
        store.promote(v3)
        store.prune(keep_latest=1)
        store.put(slow_writer, 1, "late write")   # must not raise
        store.promote(slow_writer)
        assert store.get(1) == "late write"

    def test_prune_drops_abandoned_and_superseded_versions(self):
        """The exemption is only for *open* versions: abandoning closes
        it, and promoted-then-superseded tables still prune away."""
        store = KeyValueStore()
        old = store.create_version()
        store.promote(old)
        failed = store.create_version()
        store.abandon(failed)
        for _ in range(3):
            v = store.create_version()
            store.promote(v)
            store.prune(keep_latest=1)
        assert failed not in store.versions
        assert old not in store.versions
        assert store.versions == [v]

    def test_prune_keep_latest_zero_keeps_only_exemptions(self):
        """Regression: ``prune(keep_latest=0)`` sliced the whole list
        (``[-0:]``), so "keep no history" silently kept every version.
        Zero now retains only the serving version and open staging."""
        store = KeyValueStore()
        for _ in range(4):
            serving = store.create_version()
            store.promote(serving)
        open_staging = store.create_version()
        store.prune(keep_latest=0)
        assert store.versions == sorted([serving, open_staging])
        store.prune(keep_latest=0)   # idempotent
        assert store.versions == sorted([serving, open_staging])
        # The exemptions still function: the slow writer finishes.
        store.put(open_staging, 1, "late write")
        store.promote(open_staging)
        store.prune(keep_latest=0)
        assert store.versions == [open_staging]
        assert store.get(1) == "late write"

    def test_prune_negative_keep_latest_rejected(self):
        store = KeyValueStore()
        store.promote(store.create_version())
        with pytest.raises(ValueError, match="keep_latest"):
            store.prune(keep_latest=-1)

    def test_copy_from_serving_unknown_version_raises_like_put(self):
        """Regression: with nothing serving yet, ``copy_from_serving``
        never touched the target table, so an unknown version was a
        silent no-op instead of the caller bug ``put``/``delete``
        report.  The version is now validated up front either way."""
        store = KeyValueStore()
        with pytest.raises(KeyError):
            store.copy_from_serving(77)      # nothing serving yet
        serving = store.create_version()
        store.put(serving, 1, "a")
        store.promote(serving)
        with pytest.raises(KeyError):
            store.copy_from_serving(77)      # serving present
        with pytest.raises(ValueError):
            store.copy_from_serving(serving)  # serving is immutable
        # The valid path still seeds from the serving table.
        staged = store.create_version()
        store.copy_from_serving(staged)
        assert store.size(staged) == 1

    def test_copy_from_serving_into_empty_store_is_valid_and_empty(self):
        """A known version with nothing serving seeds an empty table —
        the first daily differential of a brand-new store."""
        store = KeyValueStore()
        staged = store.create_version()
        store.copy_from_serving(staged)
        assert store.size(staged) == 0

    def test_abandon_contracts(self):
        """Abandon mirrors the other mutators: unknown version raises
        KeyError, the serving version is untouchable."""
        store = KeyValueStore()
        with pytest.raises(KeyError):
            store.abandon(77)
        v = store.create_version()
        store.promote(v)
        with pytest.raises(ValueError):
            store.abandon(v)
        staged = store.create_version()
        store.abandon(staged)
        with pytest.raises(KeyError):
            store.put(staged, 1, "x")  # abandoned: the table is gone


class TestBatchPipeline:
    def test_full_load_serves_everything(self, model):
        pipeline = BatchPipeline(model)
        report = pipeline.full_load(REQUESTS)
        assert report.n_inferred == 3
        assert pipeline.serve(1)
        assert pipeline.serve(3) == []  # no candidates for item 3

    def test_daily_differential_only_reinfers_changed(self, model):
        pipeline = BatchPipeline(model)
        pipeline.full_load(REQUESTS)
        before = pipeline.serve(2)
        report = pipeline.daily_differential(
            [(1, "gaming headphones xbox", FIG3_LEAF_ID)])
        assert report.n_inferred == 1
        assert pipeline.serve(2) == before  # untouched item kept

    def test_daily_differential_deletes(self, model):
        pipeline = BatchPipeline(model)
        pipeline.full_load(REQUESTS)
        report = pipeline.daily_differential([], deleted_item_ids=[1])
        assert report.n_deleted == 1
        assert pipeline.serve(1) == []

    def test_repeated_full_loads_bound_version_retention(self, model):
        """Regression: ``full_load`` promotes but used to skip the prune
        ``daily_differential`` performs, so a daily full refresh retained
        every historical table ever written."""
        pipeline = BatchPipeline(model)
        for _ in range(6):
            report = pipeline.full_load(REQUESTS)
        assert len(pipeline.store.versions) <= 3
        assert pipeline.store.serving_version == report.version
        assert pipeline.serve(1)  # latest table still serves

    def test_full_load_then_differential_history_stays_bounded(self, model):
        pipeline = BatchPipeline(model)
        for day in range(4):
            pipeline.full_load(REQUESTS)
            pipeline.daily_differential(
                [(1, "gaming headphones xbox", FIG3_LEAF_ID)])
        assert len(pipeline.store.versions) <= 3

    def test_unknown_engine_rejected_at_construction(self, model):
        with pytest.raises(ValueError, match="unknown engine"):
            BatchPipeline(model, engine="Fast")

    def test_process_parallel_with_reference_rejected(self, model):
        """Mode/engine pairing fails at construction, not mid-load."""
        with pytest.raises(ValueError, match="single-process"):
            BatchPipeline(model, engine="reference", parallel="process")
        with pytest.raises(ValueError, match="parallel mode"):
            BatchPipeline(model, parallel="fiber")

    def test_process_parallel_full_load_serves_identically(self, model):
        serial = BatchPipeline(model)
        serial.full_load(REQUESTS)
        sharded = BatchPipeline(model, workers=2, parallel="process")
        sharded.full_load(REQUESTS)
        for item_id, _title, _leaf in REQUESTS:
            assert sharded.serve(item_id) == serial.serve(item_id)

    def test_refresh_model_swaps(self, model):
        pipeline = BatchPipeline(model)
        pipeline.full_load(REQUESTS)
        fresh = GraphExModel.construct(build_fig3_curated())
        assert pipeline.model_generation == 0
        assert pipeline.refresh_model(fresh) == 1
        assert pipeline.model is fresh
        assert pipeline.model_generation == 1
        # An orchestrator can impose its own numbering.
        assert pipeline.refresh_model(fresh, generation=7) == 7

    def test_refresh_model_from_artifact_path(self, model, tmp_path):
        """ISSUE 6: the hand-off can be a directory path — a format-3
        artifact opens zero-copy, and the swapped pipeline serves
        byte-identically to an in-memory swap."""
        from repro.core.serialization import save_model

        artifact = save_model(model, tmp_path / "m", format_version=3)
        pipeline = BatchPipeline(model)
        baseline = BatchPipeline(model)
        assert pipeline.refresh_model(str(artifact)) == 1
        # The path was opened mmap: the serving model's arrays are
        # read-only views over the artifact file.
        leaf_id = pipeline.model.leaf_ids[0]
        assert pipeline.model.leaf_graph(leaf_id).graph.is_readonly
        pipeline.full_load(REQUESTS)
        baseline.full_load(REQUESTS)
        for item_id, _title, _leaf in REQUESTS:
            assert pipeline.serve(item_id) == baseline.serve(item_id)

    def test_refresh_model_validates_before_swapping(self, model):
        """An incompatible model must leave the pipeline serving the
        old one (generation included)."""
        scalar_only = lambda c, l, t: c / l if t > 0 else c * 0.0
        bad = GraphExModel({lid: model.leaf_graph(lid)
                            for lid in model.leaf_ids},
                           alignment=scalar_only)
        pipeline = BatchPipeline(model)
        with pytest.raises(ValueError, match="not element-wise"):
            pipeline.refresh_model(bad)
        assert pipeline.model is model
        assert pipeline.model_generation == 0
        assert pipeline.full_load(REQUESTS).n_inferred == 3

    def test_hard_limit_applied(self, model):
        pipeline = BatchPipeline(model, hard_limit=1)
        pipeline.full_load(REQUESTS)
        assert len(pipeline.serve(1)) <= 1

    def test_failed_load_abandons_staged_version(self, model):
        """A staging failure must not leak an open (prune-exempt)
        version: the pipeline abandons it and the store stays clean."""

        class FlakyStore(KeyValueStore):
            fail_next = False

            def bulk_load(self, version, records):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("kv outage")
                super().bulk_load(version, records)

        store = FlakyStore()
        pipeline = BatchPipeline(model, store=store)
        pipeline.full_load(REQUESTS)
        serving_before = store.serving_version
        versions_before = store.versions
        for run in (lambda: pipeline.full_load(REQUESTS),
                    lambda: pipeline.daily_differential(
                        [(1, "gaming headphones xbox", FIG3_LEAF_ID)])):
            store.fail_next = True
            with pytest.raises(RuntimeError, match="kv outage"):
                run()
            assert store.serving_version == serving_before
            assert store.versions == versions_before
            assert pipeline.serve(1)  # still serving the old table
        # The next clean run works and prunes normally.
        report = pipeline.daily_differential(
            [(1, "gaming headphones xbox", FIG3_LEAF_ID)])
        assert store.serving_version == report.version


class TestNRTService:
    def _service(self, model, **kwargs):
        store = KeyValueStore()
        return NRTService(model, store, **kwargs)

    def _event(self, item_id, ts, kind=ItemEventKind.CREATED,
               title="audeze maxwell gaming headphones"):
        return ItemEvent(kind=kind, item_id=item_id, title=title,
                         leaf_id=FIG3_LEAF_ID, timestamp=ts)

    def test_window_closes_on_size(self, model):
        service = self._service(model, window_size=2)
        assert service.submit(self._event(1, 0.0)) is None
        stats = service.submit(self._event(2, 0.1))
        assert stats is not None
        assert stats.n_events == 2
        assert service.serve(1)

    def test_window_closes_on_time(self, model):
        service = self._service(model, window_size=100, window_seconds=1.0)
        assert service.submit(self._event(1, 0.0)) is None
        stats = service.submit(self._event(2, 5.0))
        assert stats is not None and stats.n_events == 1
        assert service.pending_events == 1  # the late event started a window

    def test_flush_empty_is_none(self, model):
        assert self._service(model).flush() is None

    def test_unknown_engine_rejected_at_construction(self, model):
        """A bad engine must fail before any window event is buffered —
        failing mid-flush would drop the drained events."""
        with pytest.raises(ValueError, match="unknown engine"):
            self._service(model, engine="warp")

    def test_negative_hard_limit_rejected_at_construction(self, model):
        """Same invariant as the engine check: a bad cap failing inside
        flush() would lose the drained window."""
        with pytest.raises(ValueError, match="hard_limit"):
            self._service(model, hard_limit=-1)

    def test_bad_parallel_mode_rejected_at_construction(self, model):
        """Same invariant again for the shard-execution mode."""
        with pytest.raises(ValueError, match="single-process"):
            self._service(model, engine="reference", parallel="process")
        with pytest.raises(ValueError, match="parallel mode"):
            self._service(model, parallel="fiber")

    def test_process_parallel_window_serves_identically(self, model):
        serial = self._service(model, window_size=2)
        sharded = self._service(model, window_size=2, workers=2,
                                parallel="process")
        for service in (serial, sharded):
            service.submit(self._event(1, 0.0))
            stats = service.submit(self._event(
                2, 0.1, title="bluetooth wireless headphones new"))
            assert stats is not None and stats.n_inferred == 2
        assert sharded.serve(1) == serial.serve(1)
        assert sharded.serve(2) == serial.serve(2)

    def test_unvectorized_alignment_rejected_at_construction(self, model):
        """The fast engine's alignment probe must also run here, before
        any window event could be drained and lost mid-flush."""
        from repro.core.model import GraphExModel
        scalar_only = lambda c, l, t: c / l if t > 0 else c * 0.0
        bad = GraphExModel({lid: model.leaf_graph(lid)
                            for lid in model.leaf_ids},
                           alignment=scalar_only)
        with pytest.raises(ValueError, match="not element-wise"):
            self._service(bad)
        # The reference engine still serves such models.
        service = self._service(bad, engine="reference", window_size=1)
        service.submit(self._event(1, 0.0))
        assert service.serve(1)

    def test_window_size_rechecked_after_time_flush(self, model):
        """Regression: the time-elapsed path used to buffer the incoming
        event without re-checking ``window_size``, so with
        ``window_size=1`` a window-opening event would sit unflushed
        until the next arrival.  The stale window is seeded directly (no
        organic submit sequence leaves a window_size=1 buffer non-empty
        today) — the re-check makes submit's invariant
        ``pending_events < window_size`` structural rather than an
        accident of the current call graph."""
        service = self._service(model, window_size=1, window_seconds=1.0)
        service._buffer.append(self._event(1, 0.0))
        service._window_opened_at = 0.0
        stats = service.submit(self._event(2, 5.0))
        # Both windows closed: the stale one by time, the new one by
        # size; the latest window's stats are returned and both are
        # recorded.
        assert stats is not None and stats.n_events == 1
        assert service.pending_events == 0
        assert len(service.processed_windows) == 2
        assert service.serve(1) and service.serve(2)

    def test_window_size_one_never_buffers(self, model):
        """Boundary: with ``window_size=1`` every submit closes a window
        immediately, however the arrivals straddle ``window_seconds``."""
        service = self._service(model, window_size=1, window_seconds=1.0)
        for i, ts in enumerate((0.0, 0.5, 5.0, 5.2, 99.0)):
            stats = service.submit(self._event(i, ts))
            assert stats is not None and stats.n_events == 1
            assert service.pending_events == 0
        assert len(service.processed_windows) == 5

    def test_event_exactly_at_window_seconds_closes_window(self, model):
        """The boundary is inclusive: an event arriving exactly
        ``window_seconds`` after the window opened closes it."""
        service = self._service(model, window_size=100, window_seconds=1.0)
        assert service.submit(self._event(1, 0.0)) is None
        stats = service.submit(self._event(2, 1.0))
        assert stats is not None and stats.n_events == 1
        assert service.pending_events == 1  # boundary event opens anew

    def test_deleted_then_created_in_one_window_serves_item(self, model):
        """Last event per item wins: DELETE then CREATE inside one window
        must infer (not delete) the item."""
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0, kind=ItemEventKind.DELETED))
        service.submit(self._event(1, 0.1, kind=ItemEventKind.CREATED))
        stats = service.flush()
        assert stats.n_deleted == 0 and stats.n_inferred == 1
        assert service.serve(1)

    def test_flush_idempotent_on_empty_buffer(self, model):
        """Repeated flushes of an empty buffer are no-ops: no stats
        recorded, no KV version churn."""
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0))
        first = service.flush()
        assert first is not None
        served = service.serve(1)
        versions_before = list(service._store.versions)
        assert service.flush() is None
        assert service.flush() is None
        assert service.processed_windows == [first]
        assert service._store.versions == versions_before
        assert service.serve(1) == served

    def test_last_event_per_item_wins(self, model):
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0, title="unmatchable tokens qqq"))
        service.submit(self._event(
            1, 0.1, kind=ItemEventKind.REVISED,
            title="audeze maxwell gaming headphones"))
        service.flush()
        assert service.serve(1)  # revised title produced recommendations

    def test_delete_event(self, model):
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0))
        service.flush()
        assert service.serve(1)
        service.submit(self._event(1, 1.0, kind=ItemEventKind.DELETED))
        stats = service.flush()
        assert stats.n_deleted == 1
        assert service.serve(1) == []

    def test_enrichment_hook(self, model):
        service = NRTService(
            model, KeyValueStore(), window_size=1,
            enrich=lambda e: e.title + " xbox")
        service.submit(self._event(1, 0.0, title="gaming headphones"))
        served = service.serve(1)
        assert "gaming headphones xbox" in served

    def test_processed_windows_recorded(self, model):
        service = self._service(model, window_size=1)
        service.submit(self._event(1, 0.0))
        service.submit(self._event(2, 0.1))
        assert len(service.processed_windows) == 2

    def test_flush_failure_loses_no_events_and_no_version(self, model):
        """Regression: a failing enrich hook (or engine) mid-flush used
        to lose the whole drained window *and* leak the staged KV
        version unpromoted.  Now the events are restored, the version is
        abandoned, and a retry serves everything."""
        state = {"failures": 2}

        def flaky_enrich(event):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise RuntimeError("enrichment outage")
            return event.title

        store = KeyValueStore()
        service = NRTService(model, store, window_size=10,
                             enrich=flaky_enrich)
        service.submit(self._event(1, 0.0))
        service.submit(self._event(2, 0.1))
        for _ in range(2):
            with pytest.raises(RuntimeError, match="enrichment outage"):
                service.flush()
            assert service.pending_events == 2   # window restored
            assert store.versions == []          # staged version abandoned
            assert service.processed_windows == []
        stats = service.flush()                  # failures exhausted
        assert stats is not None and stats.n_events == 2
        assert stats.n_inferred == 2
        assert service.serve(1) and service.serve(2)

        clean = self._service(model, window_size=10)
        clean.submit(self._event(1, 0.0))
        clean.submit(self._event(2, 0.1))
        clean.flush()
        assert service.serve(1) == clean.serve(1)
        assert service.serve(2) == clean.serve(2)

    def test_failed_time_up_flush_keeps_incoming_event(self, model):
        """The event whose arrival triggered the failing time-up flush
        must not vanish with the exception: it joins the restored window
        and is served by the retry."""
        state = {"failures": 1}

        def flaky_enrich(event):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise RuntimeError("boom")
            return event.title

        service = NRTService(model, KeyValueStore(), window_size=10,
                             window_seconds=1.0, enrich=flaky_enrich)
        service.submit(self._event(1, 0.0))
        with pytest.raises(RuntimeError, match="boom"):
            service.submit(self._event(2, 5.0))  # time-up flush fails
        assert service.pending_events == 2
        stats = service.flush()
        assert stats.n_events == 2
        assert service.serve(1) and service.serve(2)

    def test_engine_failure_mid_flush_is_crash_safe(self, model,
                                                    monkeypatch):
        """Same crash-safety contract when the *engine* (not the enrich
        hook) raises: window restored, staged version abandoned."""
        import repro.serving.nrt as nrt_module
        real = nrt_module.batch_recommend
        state = {"failures": 1}

        def flaky_engine(*args, **kwargs):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise RuntimeError("engine outage")
            return real(*args, **kwargs)

        monkeypatch.setattr(nrt_module, "batch_recommend", flaky_engine)
        store = KeyValueStore()
        service = NRTService(model, store, window_size=2)
        service.submit(self._event(1, 0.0))
        with pytest.raises(RuntimeError, match="engine outage"):
            service.submit(self._event(2, 0.1))  # size-bound flush fails
        assert service.pending_events == 2
        assert store.versions == []
        assert service.flush().n_inferred == 2
        assert service.serve(1) and service.serve(2)

    def test_refresh_model_swaps_at_window_boundary(self, model,
                                                    fig3_variant_model):
        """Events buffered in the open (not yet drained) window are
        inferred under the new model: the swap lands at the next drain,
        and the window's stats carry the new generation."""
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0))
        assert service.model_generation == 0
        assert service.refresh_model(fig3_variant_model) == 1
        assert service.model is fig3_variant_model
        stats = service.flush()
        assert stats.model_generation == 1
        clean = self._service(fig3_variant_model, window_size=10)
        clean.submit(self._event(1, 0.0))
        clean.flush()
        assert service.serve(1) == clean.serve(1)

    def test_refresh_model_from_artifact_path(self, model,
                                              fig3_variant_model,
                                              tmp_path):
        """ISSUE 6: hot-swap by artifact path — the service remaps a
        format-3 directory zero-copy and serves byte-identically to an
        in-memory swap of the same model."""
        from repro.core.serialization import save_model

        artifact = save_model(fig3_variant_model, tmp_path / "m",
                              format_version=3)
        service = self._service(model, window_size=10)
        service.submit(self._event(1, 0.0))
        assert service.refresh_model(str(artifact)) == 1
        leaf_id = service.model.leaf_ids[0]
        assert service.model.leaf_graph(leaf_id).graph.is_readonly
        stats = service.flush()
        assert stats.model_generation == 1
        clean = self._service(fig3_variant_model, window_size=10)
        clean.submit(self._event(1, 0.0))
        clean.flush()
        assert service.serve(1) == clean.serve(1)

    def test_refresh_model_never_retargets_window_mid_flush(
            self, model, fig3_variant_model):
        """A window drained under the old model finishes under it even
        when the swap lands *mid-flush* (the async front swaps from
        another thread): flush snapshots model + generation at drain
        time.  The next window then runs under the new model."""
        holder = {}

        def swapping_enrich(event):
            if holder["service"].model_generation == 0:
                holder["service"].refresh_model(fig3_variant_model)
            return event.title

        service = NRTService(model, KeyValueStore(), window_size=10,
                             enrich=swapping_enrich)
        holder["service"] = service
        service.submit(self._event(1, 0.0))
        stats = service.flush()              # swap lands inside here
        assert service.model_generation == 1
        assert stats.model_generation == 0   # old model finished it
        old = self._service(model, window_size=1)
        old.submit(self._event(1, 0.0))
        assert service.serve(1) == old.serve(1)
        service.submit(self._event(2, 0.1))
        stats = service.flush()
        assert stats.model_generation == 1
        new = self._service(fig3_variant_model, window_size=1)
        new.submit(self._event(2, 0.1))
        assert service.serve(2) == new.serve(2)

    def test_refresh_model_validates_before_swapping(self, model):
        """An incompatible model/engine pairing must leave the service
        on the old model (it keeps serving)."""
        scalar_only = lambda c, l, t: c / l if t > 0 else c * 0.0
        bad = GraphExModel({lid: model.leaf_graph(lid)
                            for lid in model.leaf_ids},
                           alignment=scalar_only)
        service = self._service(model, window_size=1)
        with pytest.raises(ValueError, match="not element-wise"):
            service.refresh_model(bad)
        assert service.model is model
        assert service.model_generation == 0
        service.submit(self._event(1, 0.0))
        assert service.serve(1)

    def test_refresh_model_adopts_orchestrator_generation(
            self, model, fig3_variant_model):
        service = self._service(model, window_size=1)
        assert service.refresh_model(fig3_variant_model,
                                     generation=7) == 7
        service.submit(self._event(1, 0.0))
        assert service.processed_windows[-1].model_generation == 7

    def test_generation_never_goes_backwards(self, model,
                                             fig3_variant_model):
        """Mixing local refreshes with an orchestrator's explicit
        numbering cannot reuse a generation for a different model: an
        explicit number at or below the local history is bumped past
        it, keeping per-service generations strictly increasing."""
        service = self._service(model, window_size=1)
        assert service.refresh_model(fig3_variant_model,
                                     generation=5) == 5
        assert service.refresh_model(model) == 6         # local bump
        # A stale orchestrator (counter behind this service) cannot
        # relabel: 2 < 6 is bumped to 7.
        assert service.refresh_model(fig3_variant_model,
                                     generation=2) == 7
        assert service.model_generation == 7

    def test_duck_typed_store_without_lock_still_crash_safe(self, model):
        """A pre-transaction-lock store (no ``.lock`` attribute) keeps
        the old single-writer contract: flushes work, and a mid-flush
        failure still restores the window instead of dying on the
        missing lock *after* the buffer was drained."""

        class LegacyStore(KeyValueStore):
            def __init__(self):
                super().__init__()
                del self.lock

        state = {"failures": 1}

        def flaky_enrich(event):
            if state["failures"] > 0:
                state["failures"] -= 1
                raise RuntimeError("enrichment outage")
            return event.title

        store = LegacyStore()
        assert not hasattr(store, "lock")
        service = NRTService(model, store, window_size=10,
                             enrich=flaky_enrich)
        service.submit(self._event(1, 0.0))
        with pytest.raises(RuntimeError, match="enrichment outage"):
            service.flush()
        assert service.pending_events == 1   # window restored, not lost
        stats = service.flush()
        assert stats is not None and stats.n_inferred == 1
        assert service.serve(1)

    def test_shares_store_with_batch(self, model):
        """NRT writes land in the same store the batch pipeline serves —
        the Figure 7 integration point."""
        store = KeyValueStore()
        pipeline = BatchPipeline(model, store=store)
        pipeline.full_load(REQUESTS)
        service = NRTService(model, store, window_size=1)
        service.submit(self._event(
            99, 0.0, title="gaming headphones xbox"))
        assert pipeline.serve(99)
        assert pipeline.serve(1)  # batch results still present
