"""Tests for the asyncio multi-stream NRT front.

Two contracts anchor the suite:

* **Equivalence** — for every stream, the served keyphrases after a run
  are byte-identical to a synchronous :class:`NRTService` fed the same
  event sequence, however the wall-clock timers split the windows
  (per-request output is batch-independent, so window partitioning
  cannot show through).
* **Zero event loss** — with a fault-injecting enrich hook failing
  mid-flush, no event is ever lost on either the sync or the async
  path: the crash-safe flush restores the window and a retry serves
  everything (property-based, hypothesis).
"""

from __future__ import annotations

import asyncio
import dataclasses
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving import (
    AsyncNRTFront,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
    NRTService,
)
from tests.conftest import FIG3_LEAF_ID

#: Titles with varying overlap against the Figure 3 keyphrase set (the
#: last one matches nothing, so some items legitimately serve []).
TITLES = [
    "audeze maxwell gaming headphones",
    "bluetooth wireless headphones new",
    "gaming headphones xbox",
    "no tokens in common here",
]

KINDS = [ItemEventKind.CREATED, ItemEventKind.REVISED,
         ItemEventKind.DELETED]


def make_event(item_id: int, ts: float, title_index: int = 0,
               kind: ItemEventKind = ItemEventKind.CREATED) -> ItemEvent:
    return ItemEvent(kind=kind, item_id=item_id,
                     title=TITLES[title_index % len(TITLES)],
                     leaf_id=FIG3_LEAF_ID, timestamp=ts)


def feed_sync(model, events, **service_kwargs) -> NRTService:
    """The synchronous comparator: same events, one NRTService."""
    service = NRTService(model, KeyValueStore(), **service_kwargs)
    for event in events:
        service.submit(event)
    service.flush()
    return service


async def _feed(front: AsyncNRTFront, name: str, events) -> None:
    for event in events:
        await front.submit(name, event)


#: Strategy for property tests: item id, lifecycle kind, title, gap.
event_specs = st.lists(
    st.tuples(st.integers(0, 5),                 # item id
              st.sampled_from(KINDS),            # lifecycle kind
              st.integers(0, 3),                 # title index
              st.sampled_from([0.05, 0.3, 2.0])  # event-time gap
              ),
    min_size=1, max_size=16)


def build_events(specs) -> list:
    events, ts = [], 0.0
    for item_id, kind, title_index, gap in specs:
        ts += gap
        events.append(make_event(item_id, ts, title_index, kind))
    return events


class FlakyEnrich:
    """Fault injection: fail the first ``n_failures`` flush attempts.

    Raises on its first call inside a flush (aborting that flush) while
    budget remains; the lock keeps the budget exact when flushes run
    concurrently in executor threads.
    """

    def __init__(self, n_failures: int) -> None:
        self.remaining = n_failures
        self._lock = threading.Lock()

    def __call__(self, event: ItemEvent) -> str:
        with self._lock:
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("injected mid-flush failure")
        return event.title


class TestMultiStreamEquivalence:
    def test_three_streams_byte_identical_to_sync(self, fig3_model):
        """Acceptance: >= 3 concurrent streams, each serving output
        byte-identical to a sync NRTService fed the same sequence —
        with tight wall-clock timers deliberately chopping the async
        windows differently from the sync event-time windows."""
        streams = {
            "site-us": [make_event(i, i * 0.4, title_index=i % 4,
                                   kind=KINDS[i % 2]) for i in range(9)],
            "site-de": [make_event(i, i * 2.0, title_index=(i + 1) % 4)
                        for i in range(7)],
            "site-uk": [make_event(i % 3, i * 0.1, title_index=i % 4,
                                   kind=KINDS[i % 3]) for i in range(11)],
        }

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=3,
                                  window_seconds=1.0,
                                  wall_clock_seconds=0.02)
            for name in streams:
                front.add_stream(name)
            async with front:
                await asyncio.gather(*(
                    _feed(front, name, events)
                    for name, events in streams.items()))
            return front

        front = asyncio.run(drive())
        for name, events in streams.items():
            sync = feed_sync(fig3_model, events, window_size=3,
                             window_seconds=1.0)
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert stats.n_flush_failures == 0
            # Every event was processed exactly once.
            assert (sum(w.n_events
                        for w in front._streams[name]
                        .service.processed_windows) == len(events))
            for item_id in {e.item_id for e in events}:
                assert front.serve(name, item_id) \
                    == sync.serve(item_id), (name, item_id)

    def test_streams_added_while_running(self, fig3_model):
        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2)
            front.add_stream("early")
            async with front:
                await front.submit("early", make_event(1, 0.0))
                front.add_stream("late")   # consuming immediately
                await front.submit("late", make_event(2, 0.0))
                await front.submit("late", make_event(3, 0.1))
            return front

        front = asyncio.run(drive())
        assert front.serve("late", 2) and front.serve("late", 3)
        assert front.serve("early", 1)   # drained by shutdown


class TestWallClockTimer:
    def test_flushes_quiet_window_without_subsequent_event(self,
                                                           fig3_model):
        """The fix for the event-time-only limitation: a lone event is
        served after ``wall_clock_seconds`` with no later event (the
        sync service would buffer it until the next arrival)."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=0.05)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(1, 0.0))
                for _ in range(200):          # poll up to ~4s
                    await asyncio.sleep(0.02)
                    if front.serve("s", 1):
                        break
                # Served *before* shutdown, purely by the timer.
                assert front.serve("s", 1)
                assert front.stats("s").n_windows == 1
            return front

        asyncio.run(drive())

    def test_timer_window_spans_multiple_events(self, fig3_model):
        """Events arriving within the wall-clock bound share a window;
        the timer measures from window open, not from the last event."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=0.2)
            front.add_stream("s")
            async with front:
                for i in range(3):
                    await front.submit("s", make_event(i, float(i)))
                for _ in range(200):
                    await asyncio.sleep(0.02)
                    if front.stats("s").n_windows:
                        break
                stats = front.stats("s")
                assert stats.n_windows == 1
                assert stats.n_inferred == 3
            return front

        asyncio.run(drive())


class TestShutdownAndBackpressure:
    def test_graceful_shutdown_drains_open_windows(self, fig3_model):
        """stop() flushes windows the size/time bounds never closed."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=60.0)
            for name in ("a", "b"):
                front.add_stream(name)
            async with front:
                for i in range(5):
                    await front.submit("a", make_event(i, float(i) * 0.1))
                await front.submit("b", make_event(9, 0.0))
            return front

        front = asyncio.run(drive())
        for item_id in range(5):
            assert front.serve("a", item_id)
        assert front.serve("b", 9)
        assert front.stats("a").n_windows == 1   # one drained window
        assert front.stats("a").n_pending == 0

    def test_bounded_queue_applies_backpressure_without_deadlock(
            self, fig3_model):
        """max_pending=1 forces submit to await the consumer; the feed
        still completes and nothing is dropped."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=4,
                                  max_pending=1)
            front.add_stream("s")
            async with front:
                await asyncio.gather(*(
                    _feed(front, "s",
                          [make_event(10 * p + i, i * 0.1)
                           for i in range(8)])
                    for p in range(3)))          # 3 concurrent producers
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_submitted == 24
        assert stats.n_inferred == 24
        assert stats.n_pending == 0

    def test_shared_store_across_streams(self, fig3_model):
        """Streams may write through to one store (per-store lock
        serializes their flushes); reads see both streams' items."""
        store = KeyValueStore()

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=1)
            front.add_stream("a", store=store)
            front.add_stream("b", store=store)
            async with front:
                await front.submit("a", make_event(1, 0.0))
                await front.submit("b", make_event(2, 0.0))
            return front

        front = asyncio.run(drive())
        # Both items visible from either stream (same table) and from
        # the store a batch pipeline would share.
        for name in ("a", "b"):
            assert front.serve(name, 1)
            assert front.serve(name, 2)
        assert store.get(1) and store.get(2)

    def test_event_enqueued_behind_close_sentinel_is_not_lost(
            self, fig3_model):
        """Regression: a ``submit`` that passed the ``_closing`` check
        could land its event *behind* the ``_CLOSE`` sentinel (full
        queue: the consumer's get frees one slot, ``stop``'s sentinel
        takes it first, the racing put lands after).  The consumer used
        to break at the sentinel and strand the event in the queue.
        The race's end state — an event queued after ``_CLOSE`` — is
        reproduced deterministically here."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=60.0,
                                  max_pending=2)
            front.add_stream("s")
            await front.start()
            stream = front._streams["s"]
            stop_task = asyncio.create_task(front.stop())
            # One loop tick: stop() has queued _CLOSE, the consumer has
            # not yet woken to read it.
            await asyncio.sleep(0)
            assert stream.queue.qsize() == 1     # the sentinel
            # The racing submit's put lands behind the sentinel.
            stream.queue.put_nowait(make_event(1, 0.0))
            stream.n_submitted += 1
            await stop_task
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert front.serve("s", 1)               # served, not stranded
        assert stats.n_pending == 0
        assert stats.n_dropped == 0
        assert stats.n_windows == 1              # drained by shutdown

    def test_duplicate_equal_events_with_flush_failure_are_retryable(
            self, fig3_model):
        """The retention signal is the public buffered-count delta, not
        equality membership against the service's private buffer (an
        *equal* duplicate already in flight would satisfy a membership
        probe whether or not the incoming event was kept).  A batch
        carrying duplicate equal events through an injected flush
        failure counts one retryable failure, drops nothing, and serves
        the item after the retry."""
        flaky = FlakyEnrich(1)
        dup = make_event(5, 0.0)

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=30.0, enrich=flaky)
            front.add_stream("s")
            async with front:
                await front.submit("s", dup)
                await front.submit("s", dup)     # equal twin in flight
                await front.join()
                await front.flush_all()
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_dropped == 0
        assert stats.n_flush_failures == 1
        assert stats.n_pending == 0
        assert front.serve("s", 5)
        # The whole window (both copies) replayed through the retry.
        assert sum(w.n_events
                   for w in front.processed_windows("s")) == 2

    def test_retained_event_after_successful_stale_flush_not_miscounted(
            self, fig3_model):
        """Regression for the retention signal: one submit can flush a
        stale window *successfully* (shrinking the buffer) and then
        fail its own event's size-bound flush (which restores it).  A
        buffered-count delta reads that as "buffer shrank → dropped";
        the identity-based ``event_retained`` correctly reports the
        event kept, so it is counted retryable and replayed."""
        # Enrich failure pattern, one flag per enrich CALL:
        # flush[e1] fails; flush[e1,e2] fails on e1; flush[e1,e2]
        # succeeds (2 calls); flush[e3] fails; retry flush[e3] succeeds.
        pattern = [True, True, False, False, True, False]
        lock = threading.Lock()

        def enrich(event):
            with lock:
                fail = pattern.pop(0) if pattern else False
            if fail:
                raise RuntimeError("injected mid-flush failure")
            return event.title

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=1,
                                  window_seconds=1.0,
                                  wall_clock_seconds=30.0,
                                  enrich=enrich)
            front.add_stream("s")
            async with front:
                # Separate batches so each submit's outcome is judged
                # on its own.
                await front.submit("s", make_event(1, 0.0))
                await front.join()
                await front.submit("s", make_event(2, 0.5))
                await front.join()
                # Time-up arrival: its submit first flushes the stale
                # [e1, e2] window (succeeds), then fails e3's own flush.
                await front.submit("s", make_event(3, 5.0))
                await front.join()
                await front.flush_all()       # replay e3
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_dropped == 0           # e3 was never lost
        assert stats.n_flush_failures == 3
        assert stats.n_pending == 0
        for item_id in (1, 2, 3):
            assert front.serve("s", item_id)
        assert sum(w.n_events
                   for w in front.processed_windows("s")) == 3

    def test_streams_sharing_a_store_share_its_transaction_lock(
            self, fig3_model):
        """The per-stream lock IS the store's transaction lock, so
        flushes serialize with any other writer holding it (e.g. an
        orchestrated full_load), not just with sibling streams."""
        store = KeyValueStore()
        front = AsyncNRTFront(fig3_model)
        front.add_stream("a", store=store)
        front.add_stream("b", store=store)
        front.add_stream("c")
        assert front._streams["a"].lock is store.lock
        assert front._streams["b"].lock is store.lock
        assert front._streams["c"].lock is not store.lock

    def test_malformed_event_counts_as_dropped_not_retryable(
            self, fig3_model):
        """An event rejected *before* it reaches the window buffer (the
        only loss the front allows) is surfaced as ``n_dropped``, not
        miscounted as a retryable flush failure; later events still
        flow."""
        bad = ItemEvent(kind=ItemEventKind.CREATED, item_id=1,
                        title=TITLES[0], leaf_id=FIG3_LEAF_ID,
                        timestamp=None)   # poisons the window arithmetic

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(7, 0.0))
                await front.submit("s", bad)
                await front.submit("s", make_event(8, 0.1))
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_dropped == 1
        assert stats.n_flush_failures == 0
        assert stats.n_pending == 0
        assert front.serve("s", 7) and front.serve("s", 8)

    def test_malformed_timestamp_does_not_poison_the_stream(
            self, fig3_model):
        """Regression: a malformed-timestamp event arriving while no
        window was open used to install its timestamp as
        ``_window_opened_at`` before the arithmetic raised, so every
        later well-formed event raised too and the whole stream went
        permanently dark.  The bad event now dies alone.  (The
        timestamp must be non-None to poison: None reads back as "no
        window open".)"""
        bad = ItemEvent(kind=ItemEventKind.CREATED, item_id=1,
                        title=TITLES[0], leaf_id=FIG3_LEAF_ID,
                        timestamp="bogus")

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2)
            front.add_stream("s")
            async with front:
                await front.submit("s", bad)     # no window open yet
                for i in range(4):
                    await front.submit("s", make_event(10 + i, i * 0.1))
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_dropped == 1              # only the bad event
        assert stats.n_pending == 0
        for i in range(4):
            assert front.serve("s", 10 + i)

    def test_api_contracts(self, fig3_model):
        front = AsyncNRTFront(fig3_model)
        front.add_stream("s")
        with pytest.raises(ValueError, match="already exists"):
            front.add_stream("s")
        with pytest.raises(KeyError, match="unknown stream"):
            front.serve("nope", 1)
        with pytest.raises(ValueError, match="max_pending"):
            AsyncNRTFront(fig3_model, max_pending=0)
        with pytest.raises(ValueError, match="wall_clock_seconds"):
            AsyncNRTFront(fig3_model, wall_clock_seconds=0.0)
        # Engine/parallel pairings fail at front construction, exactly
        # like the sync service (no event can be buffered then lost).
        with pytest.raises(ValueError, match="unknown engine"):
            AsyncNRTFront(fig3_model, engine="warp")
        with pytest.raises(ValueError, match="single-process"):
            AsyncNRTFront(fig3_model, engine="reference",
                          parallel="process")

        async def submit_unstarted():
            await front.submit("s", make_event(1, 0.0))

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(submit_unstarted())


class TestModelHotSwap:
    def test_refresh_before_start_and_streams_added_after_swap(
            self, fig3_model, fig3_variant_model):
        """refresh_model works on a not-yet-started front, and streams
        added after the swap start on the new model with the front's
        generation."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=1)
            front.add_stream("old")
            assert await front.refresh_model(fig3_variant_model) == 1
            front.add_stream("late")     # added after the swap
            assert front.model_generation == 1
            async with front:
                await front.submit("old", make_event(1, 0.0))
                await front.submit("late", make_event(2, 0.0))
            return front

        front = asyncio.run(drive())
        for name, item_id in (("old", 1), ("late", 2)):
            sync = feed_sync(fig3_variant_model,
                             [make_event(item_id, 0.0)], window_size=1)
            assert front.serve(name, item_id) == sync.serve(item_id)
            assert all(w.model_generation == 1
                       for w in front.processed_windows(name))

    def test_refresh_validation_leaves_every_stream_on_old_model(
            self, fig3_model):
        """A bad model/engine pairing fails the up-front probe: no
        stream is swapped and the front keeps serving."""
        from repro.core.model import GraphExModel
        scalar_only = lambda c, l, t: c / l if t > 0 else c * 0.0
        bad = GraphExModel({lid: fig3_model.leaf_graph(lid)
                            for lid in fig3_model.leaf_ids},
                           alignment=scalar_only)

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=1)
            front.add_stream("s")
            async with front:
                with pytest.raises(ValueError, match="not element-wise"):
                    await front.refresh_model(bad)
                assert front.model_generation == 0
                await front.submit("s", make_event(1, 0.0))
            return front

        front = asyncio.run(drive())
        assert front.serve("s", 1)
        assert front._streams["s"].service.model is fig3_model

    def test_refresh_waits_for_in_flight_flush(self, fig3_model,
                                               fig3_variant_model):
        """The quiesce happens under the stream's store lock: a flush
        already in progress when refresh_model is issued completes
        under the old model (generation 0 window), and the swap lands
        right after it."""
        release = threading.Event()
        entered = threading.Event()

        def slow_enrich(event):
            entered.set()
            release.wait(timeout=10.0)
            return event.title

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=30.0,
                                  enrich=slow_enrich)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(1, 0.0))
                await front.submit("s", make_event(2, 0.1))
                # The size-bound flush is now blocked inside the enrich
                # hook, holding the store lock.
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait)
                refresh = asyncio.create_task(
                    front.refresh_model(fig3_variant_model))
                await asyncio.sleep(0.05)
                assert not refresh.done()    # waiting on the quiesce
                release.set()
                assert await refresh == 1
            return front

        front = asyncio.run(drive())
        windows = front.processed_windows("s")
        assert [w.model_generation for w in windows] == [0]
        sync = feed_sync(fig3_model,
                         [make_event(1, 0.0), make_event(2, 0.1)],
                         window_size=2)
        for item_id in (1, 2):
            assert front.serve("s", item_id) == sync.serve(item_id)

    def test_refresh_completes_even_if_executor_shuts_down_mid_swap(
            self, fig3_model, fig3_variant_model):
        """A stop() racing refresh_model can tear the executor down
        between per-stream hand-offs; the refresh then finishes the
        remaining quiesces inline, so the front never ends half-swapped
        (some streams on the new model, some on the old)."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2,
                                  wall_clock_seconds=30.0)
            front.add_stream("a")
            front.add_stream("b")
            async with front:
                await front.submit("a", make_event(1, 0.0))
                await front.join()
                await front.flush_all()
                # Simulate stop() winning the executor race.
                front._executor.shutdown(wait=True)
                assert await front.refresh_model(fig3_variant_model) == 1
                for name in ("a", "b"):
                    assert front._streams[name].service.model \
                        is fig3_variant_model
                # Restore a live executor so shutdown can drain.
                from concurrent.futures import ThreadPoolExecutor
                front._executor = ThreadPoolExecutor(max_workers=2)
            return front

        front = asyncio.run(drive())
        assert front.model_generation == 1
        assert front.serve("a", 1)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs1=event_specs, specs2=event_specs,
           window_size=st.integers(1, 4), by_path=st.booleans())
    def test_mid_run_swap_loses_nothing_and_post_swap_output_is_fresh(
            self, fig3_model, fig3_variant_model, specs1, specs2,
            window_size, by_path):
        """Acceptance property: a refresh_model issued mid-run with
        concurrent traffic on 3 streams loses zero events, never swaps
        mid-window (every window carries exactly one generation,
        monotone per stream), and the served output of every event
        submitted after the swap is byte-identical to a fresh front
        constructed on the new model and fed those events.

        ``by_path`` additionally exercises the ISSUE 6 hand-off: the
        refresh receives a format-3 artifact *directory* instead of a
        model object, so the swap is a zero-copy remap — with the same
        served bytes."""
        names = ("s0", "s1", "s2")
        phase1 = build_events(specs1)
        # Post-swap events get disjoint item ids so their served rows
        # are attributable regardless of window composition.
        phase2 = [dataclasses.replace(e, item_id=e.item_id + 100)
                  for e in build_events(specs2)]

        async def drive(swap_target):
            front = AsyncNRTFront(fig3_model, window_size=window_size,
                                  window_seconds=1.0,
                                  wall_clock_seconds=30.0)
            for name in names:
                front.add_stream(name)
            swap_done = asyncio.Event()

            async def feed_phases(name):
                for event in phase1:
                    await front.submit(name, event)
                await swap_done.wait()
                for event in phase2:
                    await front.submit(name, event)

            async def swapper():
                # Mid-run: phase-1 traffic is still queued/in flight on
                # every stream when the refresh is issued.
                await asyncio.sleep(0)
                await front.refresh_model(swap_target)
                swap_done.set()

            async with front:
                await asyncio.gather(
                    *(feed_phases(name) for name in names), swapper())
            return front

        async def drive_fresh():
            fresh = AsyncNRTFront(fig3_variant_model,
                                  window_size=window_size,
                                  window_seconds=1.0,
                                  wall_clock_seconds=30.0)
            fresh.add_stream("fresh")
            async with fresh:
                await _feed(fresh, "fresh", phase2)
            return fresh

        if by_path:
            from repro.core.serialization import save_model
            with tempfile.TemporaryDirectory() as tmp:
                artifact = save_model(fig3_variant_model,
                                      Path(tmp) / "m",
                                      format_version=3)
                front = asyncio.run(drive(str(artifact)))
        else:
            front = asyncio.run(drive(fig3_variant_model))
        fresh = asyncio.run(drive_fresh())
        total = len(phase1) + len(phase2)
        for name in names:
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert stats.n_flush_failures == 0
            windows = front.processed_windows(name)
            # Zero events lost, across both phases and the swap.
            assert sum(w.n_events for w in windows) == total
            # Never swaps mid-window: one generation per window,
            # monotone across the stream's run.
            generations = [w.model_generation for w in windows]
            assert generations == sorted(generations)
            assert set(generations) <= {0, 1}
            # Post-swap served output is byte-identical to the fresh
            # front built on the new model.
            for item_id in {e.item_id for e in phase2}:
                assert front.serve(name, item_id) \
                    == fresh.serve("fresh", item_id), (name, item_id)


# ---------------------------------------------------------------------
# Zero-event-loss property (acceptance criterion), sync and async.


class TestZeroEventLoss:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=event_specs, n_failures=st.integers(0, 3),
           window_size=st.integers(1, 4))
    def test_sync_no_loss_under_mid_flush_failures(
            self, fig3_model, specs, n_failures, window_size):
        events = build_events(specs)
        flaky = FlakyEnrich(n_failures)
        store = KeyValueStore()
        service = NRTService(fig3_model, store, window_size=window_size,
                             window_seconds=1.0, enrich=flaky)
        for event in events:
            try:
                service.submit(event)
            except RuntimeError:
                pass                         # event retained, retry later
        for _ in range(n_failures + 1):      # retries bounded by budget
            try:
                service.flush()
                break
            except RuntimeError:
                continue
        assert service.pending_events == 0
        # Every event was processed exactly once, across all retries.
        assert sum(w.n_events for w in service.processed_windows) \
            == len(events)
        # No leaked staging table: every retained version was promoted
        # or abandoned (serving + at most keep_latest retained).
        assert len(store.versions) <= 2
        clean = feed_sync(fig3_model, events, window_size=window_size,
                          window_seconds=1.0)
        for item_id in {e.item_id for e in events}:
            assert service.serve(item_id) == clean.serve(item_id)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=event_specs, n_failures=st.integers(0, 3),
           window_size=st.integers(1, 4))
    def test_async_no_loss_under_mid_flush_failures(
            self, fig3_model, specs, n_failures, window_size):
        events = build_events(specs)
        flaky = FlakyEnrich(n_failures)
        names = ("s0", "s1", "s2")

        async def drive():
            front = AsyncNRTFront(
                fig3_model, window_size=window_size, window_seconds=1.0,
                wall_clock_seconds=30.0,     # timers out of the picture
                enrich=flaky)
            for name in names:
                front.add_stream(name)
            async with front:
                await asyncio.gather(*(
                    _feed(front, name, events) for name in names))
                await front.join()           # queues fully consumed
                for _ in range(n_failures + 1):
                    if not any(s.n_pending for s in front.all_stats()):
                        break
                    await front.flush_all()
            return front

        front = asyncio.run(drive())
        clean = feed_sync(fig3_model, events, window_size=window_size,
                          window_seconds=1.0)
        for name in names:
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert (sum(w.n_events
                        for w in front._streams[name]
                        .service.processed_windows) == len(events))
            for item_id in {e.item_id for e in events}:
                assert front.serve(name, item_id) \
                    == clean.serve(item_id), (name, item_id)


class TestQueueHighWaterMark:
    """Satellite regression: ``StreamStats.n_pending`` is a
    point-in-time read, so a burst enqueued and fully drained between
    two stats() polls used to be invisible — the front looked idle
    even though its queue had saturated.  ``n_queue_hwm`` (and the
    ``front.queue.depth`` gauge's max) record depth at enqueue time."""

    def test_burst_drained_between_polls_is_still_visible(
            self, fig3_model):
        n = 12

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=100.0,
                                  wall_clock_seconds=100.0,
                                  max_pending=64)
            front.add_stream("s")
            async with front:
                # queue.put on a non-full queue never suspends, so the
                # whole burst lands before the consumer task gets a
                # turn — the queue deterministically climbs to n.
                for i in range(n):
                    await front.submit("s", make_event(i, 0.01 * i))
                await front.join()
                await front.flush_all()
                stats = front.stats("s")
            return front, stats

        front, stats = asyncio.run(drive())
        # The poll sees an idle stream ... n_pending has forgotten the
        # burst entirely ...
        assert stats.n_pending == 0
        # ... but the high-water mark kept it, in the dataclass and in
        # the registry gauge alike.
        assert stats.n_queue_hwm == n
        assert front.metrics.gauge_max("front.queue.depth",
                                       stream="s") == float(n)
        assert front.metrics.counter_value("front.submitted",
                                           stream="s") == n

    def test_hwm_defaults_to_zero_for_quiet_stream(self, fig3_model):
        async def drive():
            front = AsyncNRTFront(fig3_model)
            front.add_stream("quiet")
            async with front:
                pass
            return front.stats("quiet")

        stats = asyncio.run(drive())
        assert stats.n_queue_hwm == 0

    def test_staleness_gauge_tracks_refresh(self, fig3_model):
        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2,
                                  window_seconds=100.0,
                                  wall_clock_seconds=100.0)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(1, 0.0))
                await front.submit("s", make_event(2, 0.01))
                await front.join()
                await front.flush_all()
                before = front.metrics.gauge_value(
                    "nrt.staleness_seconds", stream="s")
                await front.refresh_model(fig3_model)
                after = front.metrics.gauge_value(
                    "nrt.staleness_seconds", stream="s")
            return before, after

        before, after = asyncio.run(drive())
        assert before is not None and before >= 0.0
        # The refresh reset the load stamp: the gauge's last reading
        # is the freshly swapped model's (near-zero) age.
        assert after is not None and after <= before + 1.0
