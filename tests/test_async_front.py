"""Tests for the asyncio multi-stream NRT front.

Two contracts anchor the suite:

* **Equivalence** — for every stream, the served keyphrases after a run
  are byte-identical to a synchronous :class:`NRTService` fed the same
  event sequence, however the wall-clock timers split the windows
  (per-request output is batch-independent, so window partitioning
  cannot show through).
* **Zero event loss** — with a fault-injecting enrich hook failing
  mid-flush, no event is ever lost on either the sync or the async
  path: the crash-safe flush restores the window and a retry serves
  everything (property-based, hypothesis).
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving import (
    AsyncNRTFront,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
    NRTService,
)
from tests.conftest import FIG3_LEAF_ID

#: Titles with varying overlap against the Figure 3 keyphrase set (the
#: last one matches nothing, so some items legitimately serve []).
TITLES = [
    "audeze maxwell gaming headphones",
    "bluetooth wireless headphones new",
    "gaming headphones xbox",
    "no tokens in common here",
]

KINDS = [ItemEventKind.CREATED, ItemEventKind.REVISED,
         ItemEventKind.DELETED]


def make_event(item_id: int, ts: float, title_index: int = 0,
               kind: ItemEventKind = ItemEventKind.CREATED) -> ItemEvent:
    return ItemEvent(kind=kind, item_id=item_id,
                     title=TITLES[title_index % len(TITLES)],
                     leaf_id=FIG3_LEAF_ID, timestamp=ts)


def feed_sync(model, events, **service_kwargs) -> NRTService:
    """The synchronous comparator: same events, one NRTService."""
    service = NRTService(model, KeyValueStore(), **service_kwargs)
    for event in events:
        service.submit(event)
    service.flush()
    return service


async def _feed(front: AsyncNRTFront, name: str, events) -> None:
    for event in events:
        await front.submit(name, event)


class TestMultiStreamEquivalence:
    def test_three_streams_byte_identical_to_sync(self, fig3_model):
        """Acceptance: >= 3 concurrent streams, each serving output
        byte-identical to a sync NRTService fed the same sequence —
        with tight wall-clock timers deliberately chopping the async
        windows differently from the sync event-time windows."""
        streams = {
            "site-us": [make_event(i, i * 0.4, title_index=i % 4,
                                   kind=KINDS[i % 2]) for i in range(9)],
            "site-de": [make_event(i, i * 2.0, title_index=(i + 1) % 4)
                        for i in range(7)],
            "site-uk": [make_event(i % 3, i * 0.1, title_index=i % 4,
                                   kind=KINDS[i % 3]) for i in range(11)],
        }

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=3,
                                  window_seconds=1.0,
                                  wall_clock_seconds=0.02)
            for name in streams:
                front.add_stream(name)
            async with front:
                await asyncio.gather(*(
                    _feed(front, name, events)
                    for name, events in streams.items()))
            return front

        front = asyncio.run(drive())
        for name, events in streams.items():
            sync = feed_sync(fig3_model, events, window_size=3,
                             window_seconds=1.0)
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert stats.n_flush_failures == 0
            # Every event was processed exactly once.
            assert (sum(w.n_events
                        for w in front._streams[name]
                        .service.processed_windows) == len(events))
            for item_id in {e.item_id for e in events}:
                assert front.serve(name, item_id) \
                    == sync.serve(item_id), (name, item_id)

    def test_streams_added_while_running(self, fig3_model):
        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2)
            front.add_stream("early")
            async with front:
                await front.submit("early", make_event(1, 0.0))
                front.add_stream("late")   # consuming immediately
                await front.submit("late", make_event(2, 0.0))
                await front.submit("late", make_event(3, 0.1))
            return front

        front = asyncio.run(drive())
        assert front.serve("late", 2) and front.serve("late", 3)
        assert front.serve("early", 1)   # drained by shutdown


class TestWallClockTimer:
    def test_flushes_quiet_window_without_subsequent_event(self,
                                                           fig3_model):
        """The fix for the event-time-only limitation: a lone event is
        served after ``wall_clock_seconds`` with no later event (the
        sync service would buffer it until the next arrival)."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=0.05)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(1, 0.0))
                for _ in range(200):          # poll up to ~4s
                    await asyncio.sleep(0.02)
                    if front.serve("s", 1):
                        break
                # Served *before* shutdown, purely by the timer.
                assert front.serve("s", 1)
                assert front.stats("s").n_windows == 1
            return front

        asyncio.run(drive())

    def test_timer_window_spans_multiple_events(self, fig3_model):
        """Events arriving within the wall-clock bound share a window;
        the timer measures from window open, not from the last event."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=0.2)
            front.add_stream("s")
            async with front:
                for i in range(3):
                    await front.submit("s", make_event(i, float(i)))
                for _ in range(200):
                    await asyncio.sleep(0.02)
                    if front.stats("s").n_windows:
                        break
                stats = front.stats("s")
                assert stats.n_windows == 1
                assert stats.n_inferred == 3
            return front

        asyncio.run(drive())


class TestShutdownAndBackpressure:
    def test_graceful_shutdown_drains_open_windows(self, fig3_model):
        """stop() flushes windows the size/time bounds never closed."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=100,
                                  window_seconds=1000.0,
                                  wall_clock_seconds=60.0)
            for name in ("a", "b"):
                front.add_stream(name)
            async with front:
                for i in range(5):
                    await front.submit("a", make_event(i, float(i) * 0.1))
                await front.submit("b", make_event(9, 0.0))
            return front

        front = asyncio.run(drive())
        for item_id in range(5):
            assert front.serve("a", item_id)
        assert front.serve("b", 9)
        assert front.stats("a").n_windows == 1   # one drained window
        assert front.stats("a").n_pending == 0

    def test_bounded_queue_applies_backpressure_without_deadlock(
            self, fig3_model):
        """max_pending=1 forces submit to await the consumer; the feed
        still completes and nothing is dropped."""

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=4,
                                  max_pending=1)
            front.add_stream("s")
            async with front:
                await asyncio.gather(*(
                    _feed(front, "s",
                          [make_event(10 * p + i, i * 0.1)
                           for i in range(8)])
                    for p in range(3)))          # 3 concurrent producers
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_submitted == 24
        assert stats.n_inferred == 24
        assert stats.n_pending == 0

    def test_shared_store_across_streams(self, fig3_model):
        """Streams may write through to one store (per-store lock
        serializes their flushes); reads see both streams' items."""
        store = KeyValueStore()

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=1)
            front.add_stream("a", store=store)
            front.add_stream("b", store=store)
            async with front:
                await front.submit("a", make_event(1, 0.0))
                await front.submit("b", make_event(2, 0.0))
            return front

        front = asyncio.run(drive())
        # Both items visible from either stream (same table) and from
        # the store a batch pipeline would share.
        for name in ("a", "b"):
            assert front.serve(name, 1)
            assert front.serve(name, 2)
        assert store.get(1) and store.get(2)

    def test_malformed_event_counts_as_dropped_not_retryable(
            self, fig3_model):
        """An event rejected *before* it reaches the window buffer (the
        only loss the front allows) is surfaced as ``n_dropped``, not
        miscounted as a retryable flush failure; later events still
        flow."""
        bad = ItemEvent(kind=ItemEventKind.CREATED, item_id=1,
                        title=TITLES[0], leaf_id=FIG3_LEAF_ID,
                        timestamp=None)   # poisons the window arithmetic

        async def drive():
            front = AsyncNRTFront(fig3_model, window_size=2)
            front.add_stream("s")
            async with front:
                await front.submit("s", make_event(7, 0.0))
                await front.submit("s", bad)
                await front.submit("s", make_event(8, 0.1))
            return front

        front = asyncio.run(drive())
        stats = front.stats("s")
        assert stats.n_dropped == 1
        assert stats.n_flush_failures == 0
        assert stats.n_pending == 0
        assert front.serve("s", 7) and front.serve("s", 8)

    def test_api_contracts(self, fig3_model):
        front = AsyncNRTFront(fig3_model)
        front.add_stream("s")
        with pytest.raises(ValueError, match="already exists"):
            front.add_stream("s")
        with pytest.raises(KeyError, match="unknown stream"):
            front.serve("nope", 1)
        with pytest.raises(ValueError, match="max_pending"):
            AsyncNRTFront(fig3_model, max_pending=0)
        with pytest.raises(ValueError, match="wall_clock_seconds"):
            AsyncNRTFront(fig3_model, wall_clock_seconds=0.0)
        # Engine/parallel pairings fail at front construction, exactly
        # like the sync service (no event can be buffered then lost).
        with pytest.raises(ValueError, match="unknown engine"):
            AsyncNRTFront(fig3_model, engine="warp")
        with pytest.raises(ValueError, match="single-process"):
            AsyncNRTFront(fig3_model, engine="reference",
                          parallel="process")

        async def submit_unstarted():
            await front.submit("s", make_event(1, 0.0))

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(submit_unstarted())


# ---------------------------------------------------------------------
# Zero-event-loss property (acceptance criterion), sync and async.

event_specs = st.lists(
    st.tuples(st.integers(0, 5),                 # item id
              st.sampled_from(KINDS),            # lifecycle kind
              st.integers(0, 3),                 # title index
              st.sampled_from([0.05, 0.3, 2.0])  # event-time gap
              ),
    min_size=1, max_size=16)


def build_events(specs) -> list:
    events, ts = [], 0.0
    for item_id, kind, title_index, gap in specs:
        ts += gap
        events.append(make_event(item_id, ts, title_index, kind))
    return events


class FlakyEnrich:
    """Fault injection: fail the first ``n_failures`` flush attempts.

    Raises on its first call inside a flush (aborting that flush) while
    budget remains; the lock keeps the budget exact when flushes run
    concurrently in executor threads.
    """

    def __init__(self, n_failures: int) -> None:
        self.remaining = n_failures
        self._lock = threading.Lock()

    def __call__(self, event: ItemEvent) -> str:
        with self._lock:
            if self.remaining > 0:
                self.remaining -= 1
                raise RuntimeError("injected mid-flush failure")
        return event.title


class TestZeroEventLoss:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=event_specs, n_failures=st.integers(0, 3),
           window_size=st.integers(1, 4))
    def test_sync_no_loss_under_mid_flush_failures(
            self, fig3_model, specs, n_failures, window_size):
        events = build_events(specs)
        flaky = FlakyEnrich(n_failures)
        store = KeyValueStore()
        service = NRTService(fig3_model, store, window_size=window_size,
                             window_seconds=1.0, enrich=flaky)
        for event in events:
            try:
                service.submit(event)
            except RuntimeError:
                pass                         # event retained, retry later
        for _ in range(n_failures + 1):      # retries bounded by budget
            try:
                service.flush()
                break
            except RuntimeError:
                continue
        assert service.pending_events == 0
        # Every event was processed exactly once, across all retries.
        assert sum(w.n_events for w in service.processed_windows) \
            == len(events)
        # No leaked staging table: every retained version was promoted
        # or abandoned (serving + at most keep_latest retained).
        assert len(store.versions) <= 2
        clean = feed_sync(fig3_model, events, window_size=window_size,
                          window_seconds=1.0)
        for item_id in {e.item_id for e in events}:
            assert service.serve(item_id) == clean.serve(item_id)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=event_specs, n_failures=st.integers(0, 3),
           window_size=st.integers(1, 4))
    def test_async_no_loss_under_mid_flush_failures(
            self, fig3_model, specs, n_failures, window_size):
        events = build_events(specs)
        flaky = FlakyEnrich(n_failures)
        names = ("s0", "s1", "s2")

        async def drive():
            front = AsyncNRTFront(
                fig3_model, window_size=window_size, window_seconds=1.0,
                wall_clock_seconds=30.0,     # timers out of the picture
                enrich=flaky)
            for name in names:
                front.add_stream(name)
            async with front:
                await asyncio.gather(*(
                    _feed(front, name, events) for name in names))
                await front.join()           # queues fully consumed
                for _ in range(n_failures + 1):
                    if not any(s.n_pending for s in front.all_stats()):
                        break
                    await front.flush_all()
            return front

        front = asyncio.run(drive())
        clean = feed_sync(fig3_model, events, window_size=window_size,
                          window_seconds=1.0)
        for name in names:
            stats = front.stats(name)
            assert stats.n_pending == 0
            assert (sum(w.n_events
                        for w in front._streams[name]
                        .service.processed_windows) == len(events))
            for item_id in {e.item_id for e in events}:
                assert front.serve(name, item_id) \
                    == clean.serve(item_id), (name, item_id)
