"""Tests for repro-lint (:mod:`repro.analysis`).

Three layers, mirroring how the pass is trusted:

* **Per-rule fixtures** — every rule has a failing and a passing
  fixture under ``tests/analysis_fixtures/``; the bad one must fire
  (on the right lines, for the right reasons) and the good one must be
  silent, so a rule that rots in either direction fails here first.
* **The waiver/report machinery** — parsing, application, the
  waiver-syntax/waiver-unused meta-rules, and the JSON schema CI
  consumes.
* **The repo itself** — the pass must exit clean over ``src/repro``
  (the CI gate, asserted in-process), and the monotonic-clock rule
  doubles as the regression pin that ``retry.py`` and the async
  front's window timers stay wall-clock-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (META_RULE_IDS, RULE_CLASSES, SCHEMA_VERSION,
                            default_root, lint_files, lint_sources,
                            rule_ids, run, split_fixture)
from repro.analysis.rules.async_blocking import AsyncNoBlockingRule
from repro.analysis.rules.clocks import MonotonicClockRule
from repro.analysis.rules.lazy_imports import LazyImportContractRule
from repro.analysis.rules.mmap_safety import MmapWriteSafetyRule
from repro.analysis.rules.pickle_boundary import NoPickleBoundaryRule
from repro.analysis.rules.store_lock import StoreLockDisciplineRule
from repro.analysis.waivers import parse_waivers

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def lint_fixture(name: str, rule):
    sections = split_fixture(
        (FIXTURES / name).read_text(encoding="utf-8"))
    assert sections, f"fixture {name} has no module sections"
    return lint_sources(sections, rules=[rule])


class TestRuleFixtures:
    """Every rule: bad fixture fires, good fixture is silent."""

    CASES = [
        ("async_blocking", AsyncNoBlockingRule),
        ("store_lock", StoreLockDisciplineRule),
        ("clocks", MonotonicClockRule),
        ("pickle_boundary", NoPickleBoundaryRule),
        ("mmap_safety", MmapWriteSafetyRule),
    ]

    @pytest.mark.parametrize("stem,rule_cls", CASES,
                             ids=[c[0] for c in CASES])
    def test_bad_fixture_fires(self, stem, rule_cls):
        report = lint_fixture(f"{stem}_bad.py", rule_cls())
        assert not report.ok
        assert {v.rule for v in report.violations} == {rule_cls.id}

    @pytest.mark.parametrize("stem,rule_cls", CASES,
                             ids=[c[0] for c in CASES])
    def test_good_fixture_silent(self, stem, rule_cls):
        report = lint_fixture(f"{stem}_good.py", rule_cls())
        assert report.ok, report.render()

    def test_async_blocking_finds_each_construct(self):
        report = lint_fixture("async_blocking_bad.py",
                              AsyncNoBlockingRule())
        blocked = {v.message.split("(")[0].split()[2]
                   for v in report.violations}
        assert blocked == {"time.sleep", "open", "transaction_lock",
                           "fut.result", "tempfile.mkdtemp",
                           "shutil.rmtree"}

    def test_store_lock_good_waiver_is_used(self):
        report = lint_fixture("store_lock_good.py",
                              StoreLockDisciplineRule())
        # The caller-locked function's finding is waived, not absent.
        assert len(report.waived) == 1
        assert report.waived[0].rule == "store-lock-discipline"

    def test_mmap_bad_flags_all_three_shapes(self):
        report = lint_fixture("mmap_safety_bad.py",
                              MmapWriteSafetyRule())
        assert len(report.violations) == 3

    def test_clock_rule_scope_covers_obs_plane(self):
        # The observability package joined the monotonic-clock scope:
        # wall-clock reads fire in BOTH the cluster and obs sections
        # of the bad fixture, and the good obs section stays silent.
        report = lint_fixture("clocks_bad.py", MonotonicClockRule())
        fired = {v.module for v in report.violations}
        assert "repro.cluster.fixture_clocks_bad" in fired
        assert "repro.obs.fixture_clocks_bad" in fired
        rule = MonotonicClockRule()
        assert any(module.startswith("repro.obs.")
                   for module in rule.SCOPES)
        assert "repro.obs" in rule.SCOPE_MODULES


class TestLazyImportFixtures:
    DECLARED = {("fix.eager", "fix.util"), ("fix.stale", "fix.util")}

    def test_bad_fixture_fires_cycle_eager_and_stale(self):
        rule = LazyImportContractRule(declared_lazy=self.DECLARED)
        report = lint_fixture("lazy_imports_bad.py", rule)
        messages = "\n".join(v.message for v in report.violations)
        assert "import cycle: fix.a <-> fix.b" in messages
        assert "fix.eager -> fix.util is a declared lazy edge" \
            in messages
        assert "declared lazy edge fix.stale -> fix.util no longer " \
            "exists" in messages
        assert len(report.violations) == 3

    def test_good_fixture_silent(self):
        rule = LazyImportContractRule(
            declared_lazy={("fix.c", "fix.util")})
        report = lint_fixture("lazy_imports_good.py", rule)
        assert report.ok, report.render()

    def test_type_checking_imports_are_not_edges(self):
        # fix.c's TYPE_CHECKING import of fix.d would otherwise close
        # the cycle fix.c -> fix.d -> fix.util with fix.c's lazy edge.
        rule = LazyImportContractRule(declared_lazy=set())
        report = lint_fixture("lazy_imports_good.py", rule)
        assert report.ok, report.render()

    def test_repo_declared_edges_hold(self):
        """The real contract: batch/sharding reach the execution plane
        only lazily, and the core module graph is acyclic."""
        report = run(rules=[LazyImportContractRule()])
        assert report.ok, report.render()


class TestWaiverParsing:
    def test_full_form(self):
        (waiver,) = parse_waivers(
            "x = 1  # lint: waive monotonic-clock: report stamp\n",
            "<m>", "m")
        assert waiver.rules == ["monotonic-clock"]
        assert waiver.reason == "report stamp"

    def test_multi_rule(self):
        (waiver,) = parse_waivers(
            "# lint: waive async-no-blocking, monotonic-clock: "
            "teardown\n", "<m>", "m")
        assert waiver.rules == ["async-no-blocking", "monotonic-clock"]

    def test_caller_locked_shorthand(self):
        (waiver,) = parse_waivers(
            "# lint: caller-locked: flush owns the lock\n", "<m>", "m")
        assert waiver.rules == ["store-lock-discipline"]
        assert waiver.reason == "flush owns the lock"

    def test_missing_reason_is_kept_but_empty(self):
        (waiver,) = parse_waivers(
            "# lint: waive monotonic-clock\n", "<m>", "m")
        assert waiver.rules == ["monotonic-clock"]
        assert waiver.reason == ""

    def test_malformed_yields_empty_rules(self):
        (waiver,) = parse_waivers(
            "# lint: disable-everything\n", "<m>", "m")
        assert waiver.rules == []

    def test_quoted_examples_in_strings_do_not_count(self):
        source = ('DOC = """usage: # lint: waive monotonic-clock: '
                  'x"""\n')
        assert parse_waivers(source, "<m>", "m") == []

    def test_prose_mentioning_lint_does_not_count(self):
        assert parse_waivers(
            "# see '# lint: waive ...' in the docs\n", "<m>", "m") == []


class TestWaiverEnforcement:
    SOURCE_STALE = "def f():\n    return 1  # lint: waive monotonic-clock: stale\n"
    SOURCE_NO_REASON = ("import time\n\n\ndef f():\n"
                        "    return time.time()  # lint: waive monotonic-clock\n")
    SOURCE_MALFORMED = "x = 1  # lint: suppress everything\n"

    def _lint(self, source):
        return lint_sources({"repro.cluster.fixture": source},
                            rules=[MonotonicClockRule()])

    def test_unused_waiver_is_a_violation(self):
        report = self._lint(self.SOURCE_STALE)
        assert [v.rule for v in report.violations] == ["waiver-unused"]

    def test_reasonless_waiver_does_not_suppress(self):
        report = self._lint(self.SOURCE_NO_REASON)
        assert {v.rule for v in report.violations} == \
            {"monotonic-clock", "waiver-syntax"}

    def test_malformed_waiver_is_a_violation(self):
        report = self._lint(self.SOURCE_MALFORMED)
        assert [v.rule for v in report.violations] == ["waiver-syntax"]

    def test_used_waiver_moves_finding_to_waived(self):
        source = ("import time\n\n\ndef f():\n"
                  "    # lint: waive monotonic-clock: operator stamp\n"
                  "    return time.time()\n")
        report = self._lint(source)
        assert report.ok
        assert len(report.waived) == 1
        assert report.waivers[0].used


class TestReportSchema:
    def test_json_shape(self):
        report = run(rules=[MonotonicClockRule()])
        payload = json.loads(report.to_json())
        assert payload["tool"] == "repro-lint"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload) >= {"root", "ok", "n_files",
                                "n_violations", "n_waived",
                                "violations_by_rule", "violations",
                                "waived", "waivers"}

    def test_by_rule_includes_zero_counts(self):
        report = run()
        by_rule = json.loads(report.to_json())["violations_by_rule"]
        for rule_id in rule_ids() + list(META_RULE_IDS):
            assert rule_id in by_rule  # proves every rule ran

    def test_violation_entries_are_addressable(self):
        report = lint_fixture("clocks_bad.py", MonotonicClockRule())
        entry = report.as_dict()["violations"][0]
        assert set(entry) == {"rule", "path", "module", "line", "col",
                              "message"}
        assert entry["line"] > 0


class TestSplitFixture:
    def test_line_numbers_match_the_file_on_disk(self):
        text = (FIXTURES / "clocks_bad.py").read_text(encoding="utf-8")
        sections = split_fixture(text)
        report = lint_sources(sections, rules=[MonotonicClockRule()])
        file_lines = text.splitlines()
        for violation in report.violations:
            assert "time.time" in file_lines[violation.line - 1] or \
                "datetime.now" in file_lines[violation.line - 1]

    def test_multiple_sections(self):
        sections = split_fixture(
            (FIXTURES / "lazy_imports_bad.py").read_text(
                encoding="utf-8"))
        assert set(sections) == {"fix.a", "fix.b", "fix.util",
                                 "fix.eager", "fix.stale"}


class TestRepoWideGate:
    """The tier-1 gate: the codebase itself is lint-clean."""

    def test_repo_is_clean(self):
        report = run()
        assert report.ok, "\n" + report.render()
        assert report.n_files > 50  # really swept the package

    def test_every_registered_rule_has_an_id_and_description(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids)) == len(RULE_CLASSES)
        for cls in RULE_CLASSES:
            assert cls.id and cls.description

    def test_monotonic_regression_retry_and_async_front(self):
        """Satellite pin: the retry policy and the async front's
        window timers carry no wall-clock reads (the PR 9 audit found
        none — this keeps it that way, file-scoped so the pin holds
        even if the repo-wide gate gains waivers)."""
        root = default_root()
        paths = [root / "cluster" / "retry.py",
                 root / "serving" / "async_front.py"]
        for path in paths:
            assert path.is_file()
        report = lint_files(paths, package_root=root,
                            rules=[MonotonicClockRule()])
        assert report.ok, report.render()
        assert report.waivers == []  # clean outright, not waived
