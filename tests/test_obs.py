"""The telemetry plane: registry semantics and the merge algebra.

The load-bearing property is exactness: N worker registries snapshotted
and merged — in any order, any grouping — must equal the single shared
registry that would have recorded every event directly.  That is what
lets the coordinator fold heartbeat snapshots into a fleet view whose
counters are *equal*, not approximately equal, to a single-process run
(asserted again end-to-end in CI's 2-worker cluster smoke).
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (SCHEMA_VERSION, MetricsRegistry, NullRegistry,
                       Span, Tracer, empty_snapshot, merge_snapshots,
                       metric_key, validate_snapshot)
from repro.obs.metrics import TICKS_PER_SECOND


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("a.b", {}) == "a.b"

    def test_labels_sorted_into_key(self):
        assert metric_key("a", {"z": 1, "b": "x"}) == "a{b=x,z=1}"


class TestRegistryBasics:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.inc("events")
        registry.inc("events", 4)
        assert registry.counter_value("events") == 5

    def test_counter_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("events", stream="a")
        registry.inc("events", 2, stream="b")
        assert registry.counter_value("events", stream="a") == 1
        assert registry.counter_value("events", stream="b") == 2
        assert registry.counter_value("events") == 0

    def test_gauge_tracks_water_marks(self):
        registry = MetricsRegistry()
        for value in (3.0, 9.0, 1.0):
            registry.gauge("depth", value)
        assert registry.gauge_value("depth") == 1.0
        assert registry.gauge_max("depth") == 9.0
        assert registry.snapshot()["gauges"]["depth"] == [1.0, 9.0, 1.0]

    def test_histogram_stats_and_buckets(self):
        registry = MetricsRegistry(buckets=(0.01, 0.1, 1.0))
        registry.observe("lat", 0.005)
        registry.observe("lat", 0.05)
        registry.observe("lat", 5.0)     # overflow bucket
        stats = registry.histogram_stats("lat")
        assert stats["count"] == 3
        assert stats["sum_seconds"] == pytest.approx(5.055)
        hist = registry.snapshot()["histograms"]["lat"]
        assert hist["counts"] == [1, 1, 0, 1]
        assert hist["count"] == 3

    def test_timer_records_a_duration(self):
        registry = MetricsRegistry()
        with registry.timer("t", stage="x") as timer:
            pass
        assert timer.seconds >= 0.0
        assert registry.histogram_stats("t", stage="x")["count"] == 1

    def test_negative_observation_clamps_to_zero(self):
        registry = MetricsRegistry()
        registry.observe("lat", -1.0)
        assert registry.histogram_stats("lat")["sum_seconds"] == 0.0

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(500):
                registry.inc("n")
                registry.observe("lat", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n") == 4000
        assert registry.histogram_stats("lat")["count"] == 4000

    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        registry.inc("n")
        registry.gauge("g", 1.0)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


class TestSnapshotSchema:
    def test_snapshot_is_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.inc("n", 3, host="w0")
        registry.gauge("g", 2.5)
        registry.observe("lat", 0.02)
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == SCHEMA_VERSION
        restored = json.loads(json.dumps(snapshot))
        assert restored == snapshot
        validate_snapshot(restored)

    def test_empty_snapshot_validates(self):
        validate_snapshot(empty_snapshot())

    @pytest.mark.parametrize("mutate", [
        lambda s: s.pop("schema_version"),
        lambda s: s.__setitem__("schema_version", 999),
        lambda s: s.__setitem__("bounds", []),
        lambda s: s.__setitem__("bounds", [2.0, 1.0]),
        lambda s: s.__setitem__("counters", {"k": 1.5}),
        lambda s: s.__setitem__("gauges", {"k": [1.0]}),
        lambda s: s.__setitem__(
            "histograms", {"k": {"counts": [1], "count": 1,
                                 "sum_ticks": 0}}),
    ])
    def test_malformed_snapshots_rejected(self, mutate):
        snapshot = empty_snapshot()
        mutate(snapshot)
        with pytest.raises(ValueError):
            validate_snapshot(snapshot)

    def test_histogram_count_must_match_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.01)
        snapshot = registry.snapshot()
        snapshot["histograms"]["lat"]["count"] = 7
        with pytest.raises(ValueError, match="!= sum"):
            validate_snapshot(snapshot)

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry(buckets=(0.1, 1.0))
        b = MetricsRegistry(buckets=(0.2, 1.0))
        b.observe("lat", 0.05)
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b)


# One recorded event, as hypothesis generates them.  Durations are
# drawn in integer microseconds and scaled, so the "ground truth single
# registry" comparison is about merge exactness, not float generation.
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("gauge"), st.sampled_from(["g", "h"]),
                  st.integers(min_value=-1000, max_value=1000)),
        st.tuples(st.just("observe"), st.sampled_from(["x", "y"]),
                  st.integers(min_value=0, max_value=40_000_000)),
    ),
    max_size=60)


def _record(registry, events):
    for kind, name, value in events:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.gauge(name, float(value))
        else:
            registry.observe(name, value / 1_000_000)


def _strip_gauge_values(snapshot):
    """Drop the last-set gauge component, keep the water marks.

    'Last set' is inherently order-dependent across workers (the merge
    takes the max as the conservative fleet reading); the exactness
    property quantifies over everything else.
    """
    out = json.loads(json.dumps(snapshot))
    for entry in out["gauges"].values():
        entry[0] = None
    return out


class TestMergeAlgebra:
    """Satellite: merge() is exact, associative, order-independent."""

    @given(worker_events=st.lists(_EVENTS, min_size=1, max_size=5),
           order_seed=st.randoms(use_true_random=False))
    @settings(max_examples=50)
    def test_merged_workers_equal_single_registry(self, worker_events,
                                                  order_seed):
        # Ground truth: one registry that saw every event directly.
        truth = MetricsRegistry()
        for events in worker_events:
            _record(truth, events)

        # N worker registries, snapshotted and merged in random order.
        snapshots = []
        for events in worker_events:
            worker = MetricsRegistry()
            _record(worker, events)
            # The snapshot crosses a (simulated) process boundary as
            # JSON, exactly as cluster heartbeat frames carry it.
            snapshots.append(json.loads(json.dumps(worker.snapshot())))
        order_seed.shuffle(snapshots)

        merged = merge_snapshots(snapshots)
        assert _strip_gauge_values(merged) == \
            _strip_gauge_values(truth.snapshot())
        # Counters and histograms are exact including sums: integer
        # ticks never lose a nanosecond to float folding.
        assert merged["counters"] == truth.snapshot()["counters"]
        assert merged["histograms"] == truth.snapshot()["histograms"]

    @given(worker_events=st.lists(_EVENTS, min_size=3, max_size=4))
    @settings(max_examples=25)
    def test_merge_is_associative(self, worker_events):
        snapshots = []
        for events in worker_events:
            worker = MetricsRegistry()
            _record(worker, events)
            snapshots.append(worker.snapshot())

        left = merge_snapshots(
            [merge_snapshots(snapshots[:2])] + snapshots[2:])
        right = merge_snapshots(
            snapshots[:1] + [merge_snapshots(snapshots[1:])])
        flat = merge_snapshots(snapshots)
        assert _strip_gauge_values(left) == _strip_gauge_values(flat)
        assert _strip_gauge_values(right) == _strip_gauge_values(flat)

    @given(events=_EVENTS)
    @settings(max_examples=25)
    def test_empty_snapshot_is_identity(self, events):
        worker = MetricsRegistry()
        _record(worker, events)
        snapshot = worker.snapshot()
        assert merge_snapshots([empty_snapshot(), snapshot,
                                empty_snapshot()]) == snapshot


class TestTracer:
    def test_spans_nest_with_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner completes first; export preserves completion order.
        names = [span["name"] for span in tracer.export()["spans"]]
        assert names == ["inner", "outer"]

    def test_duration_sums_spans_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("step"):
                pass
        assert tracer.duration("step") == pytest.approx(
            sum(span.duration_s for span in tracer.spans("step")))
        assert tracer.duration("missing") == 0.0

    def test_export_is_json_safe_and_versioned(self):
        tracer = Tracer()
        with tracer.span("s", shard=3):
            pass
        payload = json.loads(json.dumps(tracer.export()))
        assert payload["schema_version"] == 1
        assert payload["spans"][0]["meta"] == {"shard": 3}
        assert payload["spans"][0]["duration_s"] >= 0.0

    def test_error_annotates_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert tracer.spans("s")[0].meta["error"] == "RuntimeError"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert isinstance(a, Span)
