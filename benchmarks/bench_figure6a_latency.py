"""Figure 6a — amortized per-record inference latency.

Paper: all models within 10 ms/record; GraphEx fastest, up to 17x faster
than fastText and 13x faster than Graphite on CAT 1.  Absolute numbers
here are pure-Python, but the *ranking* (GraphEx <= Graphite < fastText)
is the reproduction target.  These use pytest-benchmark's real timing
machinery — one benchmark per (model, category).
"""

from __future__ import annotations

import itertools

import pytest

from _helpers import METAS

MODELS = ["GraphEx", "Graphite", "fastText"]

_measured = {}


def _make_runner(experiment, meta, model_name):
    model = experiment.models(meta)[model_name]
    items = experiment.test_items(meta)
    cycle = itertools.cycle(items)

    def run():
        item = next(cycle)
        model.recommend(item.item_id, item.title, item.leaf_id, k=20)

    return run


@pytest.mark.parametrize("meta", METAS)
@pytest.mark.parametrize("model_name", MODELS)
def test_figure6a_latency(experiment, benchmark, meta, model_name):
    runner = _make_runner(experiment, meta, model_name)
    benchmark.pedantic(runner, rounds=60, iterations=1, warmup_rounds=5)
    _measured[(meta, model_name)] = benchmark.stats.stats.mean


def test_figure6a_shape(experiment, results_dir, benchmark):
    """GraphEx is the fastest model on the largest category."""
    from repro.eval.reporting import render_table
    from _helpers import emit

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_measured) < len(METAS) * len(MODELS):
        pytest.skip("latency benchmarks did not run (need --benchmark-only)")
    rows = [[meta, name, _measured[(meta, name)] * 1e3]
            for meta in METAS for name in MODELS]
    table = render_table(
        ["category", "model", "mean latency (ms/record)"], rows,
        title="Figure 6a — amortized per-record inference latency")
    emit(results_dir, "figure6a_latency", table)

    for meta in ("CAT_1",):
        graphex = _measured[(meta, "GraphEx")]
        fasttext = _measured[(meta, "fastText")]
        assert graphex <= fasttext * 1.2, (
            "GraphEx should not be slower than fastText")
