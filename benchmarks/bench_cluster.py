"""Cluster runner scale-out bench: 1 → N worker "machines", plus a crash.

Spawns real worker *subprocesses* (each its own process = one
"machine"), runs the same inference batch through the cluster
coordinator at increasing fleet sizes, and verifies every merged output
element-wise against the in-process fast path.  The last column arms
one worker's kill switch (``--die-after-assignments 0`` — it hard-exits
the moment its first shard arrives) and must *still* verify, through
dead-host re-planning: the fault-tolerance headline measured, not just
asserted.

Cluster columns pay serialization + framing + socket hops per shard, so
on a single box they trail the in-process engine — the honest number;
the point of the bench is the scale-out *shape* (per-fleet-size
throughput) and the crash column's identical output, both recorded in
``BENCH_cluster.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py                # full
    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --items 300 --hosts 2 --kill                        # the CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for _helpers
from _helpers import RESULTS_DIR, emit, emit_bench_json
from bench_fast_engine import build_world

from repro.cluster import ClusterCoordinator, RetryPolicy
from repro.core.fast_inference import LeafBatchRunner
from repro.core.serialization import save_model
from repro.eval.reporting import render_table


def _worker_env() -> dict:
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
    return env


async def run_cluster(artifact: Path, requests, k: int, n_hosts: int,
                      kill_one: bool, rpc_timeout: float):
    """One column: spawn ``n_hosts`` machines, run the batch, tear down.

    Returns ``(elapsed_seconds, result, report)``.  With ``kill_one``
    the first machine hard-exits on its first shard — a real host crash
    mid-plan.
    """
    env = _worker_env()
    procs = []
    async with ClusterCoordinator(rpc_timeout=rpc_timeout,
                                  retry=RetryPolicy(seed=0),
                                  heartbeat_timeout=4.0) as coordinator:
        try:
            for index in range(n_hosts):
                argv = [sys.executable, "-m", "repro.cli",
                        "cluster-worker", "--connect",
                        f"{coordinator.host}:{coordinator.port}",
                        "--name", f"bench-{index}",
                        "--heartbeat", "0.5"]
                if kill_one and index == 0:
                    argv += ["--die-after-assignments", "0"]
                procs.append(subprocess.Popen(argv, env=env))
            await coordinator.wait_for_workers(n_hosts, timeout=30.0)
            start = time.perf_counter()
            result = await coordinator.run_inference(
                str(artifact), requests, k=k)
            elapsed = time.perf_counter() - start
        finally:
            await coordinator.stop()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        return elapsed, result, coordinator.last_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=2000)
    parser.add_argument("--leaves", type=int, default=12)
    parser.add_argument("--phrases-per-leaf", type=int, default=300)
    parser.add_argument("-k", type=int, default=20)
    parser.add_argument("--hosts", type=int, default=3,
                        help="fleet size of the largest scale-out "
                             "column (columns run at 1 and at this)")
    parser.add_argument("--kill", action="store_true",
                        help="add the crash column: one of the machines "
                             "hard-exits mid-plan and the run must "
                             "still verify")
    parser.add_argument("--rpc-timeout", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    model, requests = build_world(args.leaves, args.phrases_per_leaf,
                                  args.items, args.seed)
    print(f"world: {model.n_leaves} leaves, {model.n_keyphrases} "
          f"keyphrases, {len(requests)} requests")
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        artifact = Path(tmp) / "model"
        save_model(model, artifact, format_version=3)

        start = time.perf_counter()
        expected = LeafBatchRunner(model, k=args.k).run(requests)
        local_time = time.perf_counter() - start

        fleet_sizes = sorted({1, max(1, args.hosts)})
        columns = [(f"cluster x{n}", n, False) for n in fleet_sizes]
        if args.kill:
            n = max(2, args.hosts)
            columns.append((f"cluster x{n} +kill", n, True))

        rows = [["local fast engine", f"{local_time:.3f}",
                 f"{len(requests) / local_time:,.0f}", "-", "-", "yes"]]
        throughput = {"local": len(requests) / local_time}
        all_identical = True
        kill_stats = None
        fleet_metrics = None
        for label, n_hosts, kill_one in columns:
            elapsed, result, report = asyncio.run(run_cluster(
                artifact, requests, args.k, n_hosts, kill_one,
                args.rpc_timeout))
            identical = result == expected
            all_identical = all_identical and identical
            throughput[label] = len(requests) / elapsed
            rows.append([label, f"{elapsed:.3f}",
                         f"{len(requests) / elapsed:,.0f}",
                         str(report.n_replans),
                         str(report.n_retries),
                         "yes" if identical else "NO"])
            if kill_one:
                kill_stats = {
                    "workers_killed": 1,
                    "n_replans": report.n_replans,
                    "n_local_units": report.n_local_units,
                    "completed": all(count == 1 for count
                                     in report.merge_counts.values()),
                }
            else:
                # Largest clean fleet wins: its merged snapshot is the
                # artifact's metrics block (exactly-once contract —
                # merged requests must equal the batch size).
                fleet_metrics = report.fleet_metrics

        table = render_table(
            ["path", "seconds", "items/s", "replans", "retries",
             "identical"],
            rows, title="Cluster runner scale-out "
                        f"({len(requests)} requests)")
        emit(RESULTS_DIR, "cluster", table)

        payload = {
            "verified_identical": all_identical,
            "workers": max(fleet_sizes),
            "executor": "cluster",
            "items": len(requests),
            "throughput": throughput,
            "metrics": fleet_metrics,
        }
        if kill_stats is not None:
            payload["fault_tolerance"] = kill_stats
        emit_bench_json(RESULTS_DIR, "cluster", payload)
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
