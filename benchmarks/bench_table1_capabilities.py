"""Table I — capability matrix of the recommendation frameworks.

The paper's Table I is qualitative; here each checkable claim about
GraphEx is *verified against the built system* rather than asserted, and
the matrix is printed in the paper's layout.
"""

from __future__ import annotations

from repro.core import CurationConfig, GraphExModel, curate
from repro.eval.reporting import render_table

from _helpers import emit


def _verify_graphex_claims(experiment):
    """Check the three machine-verifiable Table I claims for GraphEx."""
    curated = curate(experiment.keyphrase_stats("CAT_3"),
                     experiment.config.curation)
    model = GraphExModel.construct(curated)

    # Claim: 100% in-vocabulary targeting (predictions ⊆ curated labels).
    universe = {text for leaf in curated.leaves.values()
                for text in leaf.texts}
    items = experiment.test_items("CAT_3")[:30]
    in_vocab = all(
        rec.text in universe
        for item in items
        for rec in model.recommend(item.title, item.leaf_id, k=20))

    # Claim: click-data debiasing — construction consumed no item ids.
    debiased = all(
        len(leaf.texts) == len(leaf.search_counts)
        for leaf in curated.leaves.values())

    # Claim: feasible daily batch latency — construction in seconds.
    import time
    start = time.perf_counter()
    GraphExModel.construct(curated)
    fast_training = (time.perf_counter() - start) < 60.0
    return in_vocab, debiased, fast_training


def test_table1_capabilities(experiment, results_dir, benchmark):
    in_vocab, debiased, fast = benchmark.pedantic(
        _verify_graphex_claims, args=(experiment,), rounds=1, iterations=1)
    assert in_vocab and debiased and fast

    rows = [
        ["Feasible daily batch / real-time latency", "yes", "yes",
         "yes (verified)" if fast else "NO"],
        ["Click data debiasing", "?", "no",
         "yes (verified)" if debiased else "NO"],
        ["Susceptible to RE de-duplication", "yes", "?", "no (low recall)"],
        ["100% targeting in-vocabulary keyphrases", "yes", "no",
         "yes (verified)" if in_vocab else "NO"],
        ["Focus on popular keyphrases", "no", "no", "yes (curation)"],
    ]
    table = render_table(
        ["Criteria", "XMC-tagging", "OOV", "GraphEx"], rows,
        title="Table I — framework capability matrix "
              "(machine-verifiable GraphEx cells checked against the build)")
    emit(results_dir, "table1_capabilities", table)
