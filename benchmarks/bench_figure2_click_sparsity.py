"""Figure 2 — distribution of click data: queries-per-item histogram.

Paper: ~96% of items have no clicks at all, and ~90% of clicked items are
associated with exactly one query.  The simulation reproduces the *shape*:
a heavy spike at one query per item with a fast-decaying tail, and a large
fraction of items with no clicks — the sparsity that makes click-trained
models under-recommend.
"""

from __future__ import annotations

from repro.eval.reporting import render_bar_chart, render_table
from repro.search import click_sparsity

from _helpers import emit


def _compute(experiment):
    log = experiment.train_log
    n_items = len(experiment.dataset.catalog.items)
    histogram = log.queries_per_item_histogram()
    sparsity = click_sparsity(log, n_items)
    return histogram, sparsity


def test_figure2_click_sparsity(experiment, results_dir, benchmark):
    histogram, sparsity = benchmark.pedantic(
        _compute, args=(experiment,), rounds=1, iterations=1)

    buckets = sorted(histogram)
    shown = [b for b in buckets if b <= 10]
    labels = [f"{b} queries" for b in shown] + ["> 10 queries"]
    values = [float(histogram[b]) for b in shown] + [
        float(sum(histogram[b] for b in buckets if b > 10))]
    chart = render_bar_chart(
        labels, values,
        title="Figure 2 — # items by distinct clicked queries "
              "(training window)")
    summary = render_table(
        ["statistic", "value", "paper"],
        [["frac. items without clicks",
          sparsity["frac_items_without_clicks"], "~0.96"],
         ["frac. clicked items with a single query",
          sparsity["frac_clicked_items_single_query"], "~0.90"]],
        title="Click sparsity summary")
    emit(results_dir, "figure2_click_sparsity", chart + "\n\n" + summary)

    # Shape assertions: the one-query bucket dominates and the histogram
    # decays; a meaningful share of items has no clicks at all.  The
    # simulation is denser than eBay (fewer items per search), so the
    # absolute fractions undershoot the paper's 0.96/0.90 — recorded as a
    # known divergence in EXPERIMENTS.md.
    assert histogram.get(1, 0) == max(histogram.values())
    assert sparsity["frac_items_without_clicks"] > 0.2
    assert sparsity["frac_clicked_items_single_query"] > 0.1
