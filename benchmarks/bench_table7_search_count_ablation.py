"""Table VII — Search-Count threshold ablation (paper: 90 vs 180).

The paper builds two GraphEx models with thresholds 90 and 180 (0.5/day
vs 1/day over six months), then measures, on the *disparate* parts of
their recommendations, the share of relevant and relevant-head
keyphrases.  Finding: the higher threshold loses a little relevance but
gains a lot of head coverage.  Our thresholds keep the paper's 1:2 ratio,
scaled to simulation volume.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import CurationConfig
from repro.eval.reporting import render_table

from _helpers import emit

#: Scaled analogues of the paper's 90 / 180 (same 1:2 ratio).
LOW_THRESHOLD = 8
HIGH_THRESHOLD = 16


def _predictions(experiment, meta, threshold):
    config = replace(experiment.config.curation,
                     min_search_count=threshold, min_keyphrases=0)
    recommender = experiment.build_graphex(meta, curation=config)
    return {
        item.item_id: [
            p.text for p in recommender.recommend(
                item.item_id, item.title, item.leaf_id,
                k=experiment.config.prediction_limit)]
        for item in experiment.test_items(meta)
    }


def _compute(experiment):
    meta = "CAT_1"
    low = _predictions(experiment, meta, LOW_THRESHOLD)
    high = _predictions(experiment, meta, HIGH_THRESHOLD)
    judge = experiment.judge
    head = experiment.head_classifier(meta)
    titles = {item.item_id: item.title
              for item in experiment.test_items(meta)}

    identical_items = 0
    stats = {LOW_THRESHOLD: {"n": 0, "relevant": 0, "head": 0},
             HIGH_THRESHOLD: {"n": 0, "relevant": 0, "head": 0}}
    for item_id in low:
        set_low, set_high = set(low[item_id]), set(high[item_id])
        if set_low == set_high:
            identical_items += 1
            continue
        exclusive = {LOW_THRESHOLD: set_low - set_high,
                     HIGH_THRESHOLD: set_high - set_low}
        for threshold, texts in exclusive.items():
            for text in texts:
                stats[threshold]["n"] += 1
                if judge.is_relevant(item_id, titles[item_id], text):
                    stats[threshold]["relevant"] += 1
                    if head.is_head(text):
                        stats[threshold]["head"] += 1
    frac_identical = identical_items / max(1, len(low))
    return stats, frac_identical


def test_table7_search_count_ablation(experiment, results_dir, benchmark):
    stats, frac_identical = benchmark.pedantic(
        _compute, args=(experiment,), rounds=1, iterations=1)

    rows = []
    for threshold in (LOW_THRESHOLD, HIGH_THRESHOLD):
        s = stats[threshold]
        n = max(1, s["n"])
        rows.append([threshold, 100.0 * s["relevant"] / n,
                     100.0 * s["head"] / n])
    table = render_table(
        ["SC threshold", "% relevant (exclusive)",
         "% relevant head (exclusive)"],
        rows,
        title=("Table VII — Search-Count threshold ablation on CAT_1 "
               f"(identical rec-sets: {frac_identical:.1%}; paper ~20%)"))
    emit(results_dir, "table7_search_count_ablation", table)

    low_rel, low_head = rows[0][1], rows[0][2]
    high_rel, high_head = rows[1][1], rows[1][2]
    # Paper's trade-off: the higher threshold's exclusive keyphrases carry
    # a much larger head share, at a modest relevance cost.
    assert high_head > low_head
    assert low_rel > 0
