"""Figure 6b — model size comparison.

Paper: fastText is by far the largest (weight matrices + embeddings, up
to ~800 MB); Graphite sizeable on CAT 1; GraphEx minimal even with many
leaf-category graphs.  We measure serialized GraphEx size and in-memory
array footprints for the two other models, per category.
"""

from __future__ import annotations

from repro.eval.reporting import render_table

from _helpers import METAS, emit


def _compute(experiment, tmp_root):
    from repro.core.serialization import model_size_bytes, save_model

    rows = []
    shape = {}
    for meta in METAS:
        models = experiment.models(meta)
        graphex = models["GraphEx"].model
        path = tmp_root / f"graphex_{meta}"
        save_model(graphex, path)
        sizes = {
            "GraphEx": model_size_bytes(path),
            "Graphite": models["Graphite"].memory_bytes(),
            "fastText": models["fastText"].memory_bytes(),
        }
        shape[meta] = sizes
        for name in ("fastText", "Graphite", "GraphEx"):
            rows.append([meta, name, sizes[name] / 1024.0])
    return rows, shape


def test_figure6b_model_size(experiment, results_dir, benchmark,
                             tmp_path_factory):
    tmp_root = tmp_path_factory.mktemp("models")
    rows, shape = benchmark.pedantic(
        _compute, args=(experiment, tmp_root), rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "size (KiB)"], rows,
        title="Figure 6b — model sizes "
              "(GraphEx serialized; others: weight/array footprint)")
    emit(results_dir, "figure6b_model_size", table)

    for meta in METAS:
        sizes = shape[meta]
        # fastText's hashed weight matrices dwarf the graph models.
        assert sizes["fastText"] > sizes["GraphEx"]
        assert sizes["fastText"] > sizes["Graphite"]
        # GraphEx stays small even with one graph per leaf category.
        assert sizes["GraphEx"] < 32 * 1024 * 1024
