"""Table IV — exclusive (diverse) relevant head keyphrases vs GraphEx.

Paper: GraphEx contributes 1.03x-12.2x more exclusive relevant head
keyphrases than every other model; the incremental-impact argument rests
on this table.  Values are GraphEx's per-item exclusive count divided by
the compared model's (inf when the compared model has none).
"""

from __future__ import annotations

from repro.eval.diversity import (
    diversity_ratios,
    exclusive_relevant_head_counts,
)
from repro.eval.reporting import render_table

from _helpers import METAS, MODEL_ORDER, emit


def _compute(experiment):
    ratio_rows = []
    count_rows = []
    for meta in METAS:
        judged = experiment.judged(meta)
        counts = exclusive_relevant_head_counts(judged)
        ratios = diversity_ratios(judged, reference="GraphEx")
        for name in MODEL_ORDER:
            count_rows.append([meta, name, counts[name]])
            if name != "GraphEx":
                value = ratios[name]
                ratio_rows.append(
                    [meta, name,
                     "inf" if value == float("inf") else round(value, 2)])
    return ratio_rows, count_rows


def test_table4_diversity(experiment, results_dir, benchmark):
    ratio_rows, count_rows = benchmark.pedantic(
        _compute, args=(experiment,), rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "GraphEx exclusive ÷ model exclusive"],
        ratio_rows,
        title="Table IV — relative exclusive relevant-head diversity "
              "(paper: all values > 1)")
    detail = render_table(
        ["category", "model", "exclusive relevant-head per item"],
        count_rows, title="Underlying per-item exclusive counts (Figure 5)")
    emit(results_dir, "table4_diversity", table + "\n\n" + detail)

    by_key = {(r[0], r[1]): r[2] for r in count_rows}
    # GraphEx out-diversifies the click-lookup and similar-listing models
    # on the large and medium categories (its keyphrases come from
    # searches, not clicks).  CAT_3 is excluded: the paper itself reports
    # GraphEx struggles on the smallest category ("creating effective
    # keyphrases for GraphEx becomes difficult").
    for meta in ("CAT_1", "CAT_2"):
        graphex = by_key[(meta, "GraphEx")]
        for other in ("RE", "SL-query", "fastText"):
            assert graphex >= by_key[(meta, other)]
