"""Multi-stream NRT throughput: asyncio front vs sequential sync loop.

Synthesizes one event feed per stream from the shared synthetic world
(titles composed from per-leaf token pools, as in
``bench_fast_engine.py``), then serves them twice:

* **sync** — one :class:`NRTService` per stream, fed sequentially; the
  single-process baseline a synchronous caller would run.
* **async** — one :class:`AsyncNRTFront` driving all streams
  concurrently: bounded queues, wall-clock timers armed (set wide so
  the measurement is pure ingest+flush), micro-batches handed off to
  the executor.
* **async + mid-run hot-swap** (default; ``--no-hot-swap`` skips it) —
  the same run with a zero-downtime ``refresh_model`` issued halfway
  through every feed, swapping in an identical rebuild of the model
  (the daily-refresh stand-in).  The column shows the throughput dip
  the per-stream quiesce costs; the served output must still be
  byte-identical to the sync baseline, and at least one window must
  have been served by the swapped-in generation.

Both paths use the same engine configuration, and the served output of
every stream is verified **byte-identical** between them before any
number is reported — window partitioning may differ, served results may
not.  The speedup is measured, not asserted: on a single core the async
front roughly breaks even (it buys concurrency, not cycles); with
multiple cores and ``--workers`` the executor overlap wins.

Usage::

    PYTHONPATH=src python benchmarks/bench_async_front.py          # full
    PYTHONPATH=src python benchmarks/bench_async_front.py \
        --streams 3 --events 300 --repeat 1                        # smoke

Like the other standalone benches, emits a human-readable table plus a
machine-readable ``BENCH_async_front.json`` for cross-PR tracking.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # for _helpers
from _helpers import RESULTS_DIR, emit, emit_bench_json
from bench_fast_engine import build_world

from repro.eval.reporting import render_table
from repro.serving import (AsyncNRTFront, ItemEvent, ItemEventKind,
                           KeyValueStore, NRTService)


def build_feeds(n_streams: int, events_per_stream: int, requests):
    """Per-stream event feeds drawn round-robin from the synthetic
    request pool (item ids offset per stream so streams never collide)."""
    feeds = {}
    for s in range(n_streams):
        events = []
        for i in range(events_per_stream):
            _item, title, leaf_id = requests[(s + i * n_streams)
                                             % len(requests)]
            events.append(ItemEvent(
                kind=(ItemEventKind.REVISED if i % 5 == 0
                      else ItemEventKind.CREATED),
                item_id=s * events_per_stream + i,
                title=title, leaf_id=leaf_id, timestamp=i * 0.01))
        feeds[f"stream-{s}"] = events
    return feeds


def run_sync(model, feeds, args):
    """Sequential baseline: one sync NRTService per stream."""
    services = {}
    start = time.perf_counter()
    for name, events in feeds.items():
        service = NRTService(model, KeyValueStore(),
                             window_size=args.window_size,
                             window_seconds=args.window_seconds,
                             engine=args.engine, workers=args.workers)
        for event in events:
            service.submit(event)
        service.flush()
        services[name] = service
    return time.perf_counter() - start, services


def run_async(model, feeds, args, swap_to=None):
    """Concurrent front: every stream multiplexed on one event loop.

    With ``swap_to``, a zero-downtime model hot-swap is issued halfway
    through every feed — the throughput then includes the quiesce dip —
    and all post-swap windows run under the swapped-in model.
    """

    async def drive():
        front = AsyncNRTFront(
            model, window_size=args.window_size,
            window_seconds=args.window_seconds,
            wall_clock_seconds=30.0,   # wide: measure ingest, not timers
            max_pending=args.max_pending,
            engine=args.engine, workers=args.workers)
        for name in feeds:
            front.add_stream(name)

        async def feed(name, events):
            for event in events:
                await front.submit(name, event)

        start = time.perf_counter()
        async with front:              # stop() drains every open window
            if swap_to is None:
                await asyncio.gather(*(feed(name, feeds[name])
                                       for name in feeds))
            else:
                half = {name: len(events) // 2
                        for name, events in feeds.items()}
                await asyncio.gather(*(feed(name,
                                            feeds[name][:half[name]])
                                       for name in feeds))
                await front.refresh_model(swap_to)
                await asyncio.gather(*(feed(name,
                                            feeds[name][half[name]:])
                                       for name in feeds))
        return time.perf_counter() - start, front

    return asyncio.run(drive())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--events", type=int, default=2000,
                        help="events per stream")
    parser.add_argument("--leaves", type=int, default=12)
    parser.add_argument("--phrases-per-leaf", type=int, default=400)
    parser.add_argument("--window-size", type=int, default=32)
    parser.add_argument("--window-seconds", type=float, default=1.0)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--engine", choices=["reference", "fast"],
                        default="fast")
    parser.add_argument("--workers", type=int, default=1,
                        help="per-flush engine workers (forwarded)")
    parser.add_argument("--hot-swap", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="also measure a run with a mid-run "
                             "zero-downtime model hot-swap (served "
                             "output verified identical)")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    model, requests = build_world(args.leaves, args.phrases_per_leaf,
                                  max(args.streams * args.events, 512),
                                  args.seed)
    feeds = build_feeds(args.streams, args.events, requests)
    total_events = args.streams * args.events
    print(f"world: {model.n_leaves} leaves, {model.n_keyphrases} "
          f"keyphrases; {args.streams} streams x {args.events} events")

    swap_model = None
    if args.hot_swap:
        # The daily refresh stand-in: an identical rebuild of the world
        # (construction is deterministic), so the hot-swapped run must
        # still serve byte-identically to the sync baseline.
        swap_model, _ = build_world(
            args.leaves, args.phrases_per_leaf,
            max(args.streams * args.events, 512), args.seed)

    sync_time = async_time = swap_time = float("inf")
    sync_services = front = swap_front = None
    for _ in range(args.repeat):
        elapsed, services = run_sync(model, feeds, args)
        if elapsed < sync_time:
            sync_time, sync_services = elapsed, services
        elapsed, run_front = run_async(model, feeds, args)
        if elapsed < async_time:
            async_time, front = elapsed, run_front
        if swap_model is not None:
            elapsed, run_front = run_async(model, feeds, args,
                                           swap_to=swap_model)
            if elapsed < swap_time:
                swap_time, swap_front = elapsed, run_front

    # Byte-identical served output per stream, async vs sync — window
    # partitioning (and, for the hot-swap run, which model generation
    # served a window) may differ, the served table may not.
    checked_fronts = [("async", front)]
    if swap_front is not None:
        checked_fronts.append(("hot-swap", swap_front))
    for tag, checked in checked_fronts:
        for name, events in feeds.items():
            for event in events:
                if checked.serve(name, event.item_id) \
                        != sync_services[name].serve(event.item_id):
                    print(f"SERVED MISMATCH ({tag}) on {name} "
                          f"item {event.item_id}")
                    return 1
    if swap_front is not None:
        if swap_front.model_generation != 1:
            print("HOT-SWAP DID NOT LAND (generation "
                  f"{swap_front.model_generation})")
            return 1
        post_swap = sum(
            w.model_generation == 1
            for name in feeds
            for w in swap_front.processed_windows(name))
        if not post_swap:
            print("HOT-SWAP SERVED NO GENERATION-1 WINDOW")
            return 1

    speedup = sync_time / async_time if async_time else float("inf")
    rows = [
        ["sync sequential", sync_time * 1e3, total_events / sync_time,
         1.0],
        [f"async x{args.streams} streams", async_time * 1e3,
         total_events / async_time, speedup],
    ]
    if swap_front is not None:
        rows.append(
            ["async + mid-run hot-swap", swap_time * 1e3,
             total_events / swap_time,
             sync_time / swap_time if swap_time else float("inf")])
    table = render_table(
        ["front", "total time (ms)", "events/s", "speedup"], rows,
        title=f"Multi-stream NRT bake-off — {args.streams} streams, "
              f"{total_events} events, window_size={args.window_size}, "
              f"engine={args.engine} (served output verified identical)")
    RESULTS_DIR.mkdir(exist_ok=True)
    emit(RESULTS_DIR, "async_front", table)
    emit_bench_json(RESULTS_DIR, "async_front", {
        "verified_identical": True,
        "workers": args.workers,
        "executor": "thread",
        "streams": args.streams,
        "events_per_stream": args.events,
        "window_size": args.window_size,
        "engine": args.engine,
        "hot_swap": swap_front is not None,
        "hot_swap_verified": swap_front is not None,
        "throughput": {row[0]: row[2] for row in rows},
        "speedup": {row[0]: row[3] for row in rows},
        # Best async run's registry: per-stream submit/flush counters,
        # queue-depth/staleness gauges, window-latency histograms.
        "metrics": front.metrics.snapshot(),
    })
    return 0


if __name__ == "__main__":
    sys.exit(main())
