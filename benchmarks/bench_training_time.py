"""Section IV-G — training / construction time comparison.

Paper: GraphEx constructs in under 1 minute, Graphite in 1-6 minutes,
fastText in 4+ hours.  Reproduction target: GraphEx's construction is the
fastest, and orders of magnitude below the SGD-trained fastText.
"""

from __future__ import annotations

import pytest

from repro.baselines import FastTextLike, Graphite
from repro.core import GraphExModel, curate

from _helpers import emit

META = "CAT_1"

_timings = {}


def test_training_time_graphex(experiment, benchmark):
    stats = curate(experiment.keyphrase_stats(META),
                   experiment.config.curation)
    result = benchmark.pedantic(
        GraphExModel.construct, args=(stats,), rounds=3, iterations=1)
    assert result.n_leaves > 0
    _timings["GraphEx"] = benchmark.stats.stats.mean


def test_training_time_graphite(experiment, benchmark):
    data = experiment.training_data(META)
    benchmark.pedantic(Graphite, args=(data,), rounds=3, iterations=1)
    _timings["Graphite"] = benchmark.stats.stats.mean


def test_training_time_fasttext(experiment, benchmark):
    data = experiment.training_data(META)
    benchmark.pedantic(
        lambda: FastTextLike(data, epochs=5), rounds=1, iterations=1)
    _timings["fastText"] = benchmark.stats.stats.mean


def test_training_time_shape(results_dir, benchmark):
    from repro.eval.reporting import render_table

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_timings) < 3:
        pytest.skip("training benchmarks did not run")
    rows = [[name, seconds]
            for name, seconds in sorted(_timings.items(),
                                        key=lambda kv: kv[1])]
    table = render_table(
        ["model", "construction/training time (s)"], rows,
        title="Section IV-G — model construction times on CAT_1 "
              "(paper: GraphEx < 1 min, Graphite 1-6 min, fastText 4+ h)")
    emit(results_dir, "training_time", table)

    assert _timings["GraphEx"] < _timings["fastText"]
