"""Construction bake-off: bulk builder vs scalar reference (Section IV-G).

The paper's operational claim is that GraphEx *constructs* in under a
minute while SGD training takes hours; ``bench_training_time.py``
reproduces the cross-model comparison.  This bench measures the
construct phase itself: the same keyphrase stats are curated and built
through the scalar reference pipeline (``curate(engine="reference")`` +
``construct(builder="reference")``) and the bulk pipeline
(``fast_curate`` + the array-native fast builder), the resulting models
are verified **bit-identical** (vocab id order, CSR arrays, label
arrays, pooled graph) and a sample batch is verified element-wise
identical through the inference engines, then keyphrases/s and the
speedup are reported.

Two dataset modes, like ``bench_fast_engine.py``'s synthetic world:

* ``--dataset synthetic`` (default) — a Section IV-G-*scale* workload:
  a meta category of ~100k keyphrases across overlapping per-leaf token
  pools (the paper's categories carry 10k-1M labels each, far beyond
  what the miniature session simulator yields).  The acceptance target
  for the fast builder is >= 4x here.
* ``--dataset simulated`` — the end-to-end pipeline input: aggregated
  stats from a simulated training window (same path as the CLI and the
  eval harness), sized by ``--profile``/``--events``.

``--executor`` picks the fast row's shard substrate (``--parallel`` is
the legacy alias).  ``--executor process`` adds a row building
whole-leaf shards in worker processes
(:class:`repro.core.execution.ProcessShardExecutor`, whose workers
hand their graphs back as zero-copy format-3 leaf bundles, per-shard
token caches merged afterwards); ``--executor cluster`` instead runs
them on a self-contained localhost fleet.  Either extra row is
verified bit-identical too, and its speedup over the thread path is
reported — measured, not asserted; the row includes pool/fleet
start-up and artifact staging and needs multiple physical cores to
win.

Every run also closes the **measurement loop** the execution plane
exists for: one build records per-leaf wall clock into a
:class:`repro.core.execution.CostModel`, the plan is recomputed on
those observed costs, and the JSON artifact carries the makespan ratio
as ``rebalance_gain`` (the fed-back build is verified bit-identical —
feedback moves work between shards, never changes its result).

A **model-open latency** section saves the built model as a format-3
artifact and times ``load_model(dir)`` (copied: every array and string
materialized) against ``load_model(dir, mmap=True)`` (read-only views
over the artifact file, strings decoded lazily).  The mapped model is
verified to serve byte-identical output first; the two open times land
in the table (``open/copied``, ``open/mmap``) and in the BENCH json as
``model_open_latency``.

Usage::

    PYTHONPATH=src python benchmarks/bench_model_build.py           # full
    PYTHONPATH=src python benchmarks/bench_model_build.py \
        --executor process --workers 4                # + process column
    PYTHONPATH=src python benchmarks/bench_model_build.py \
        --dataset simulated --profile tiny --events 6000 --repeat 1  # smoke

Like ``bench_fast_engine.py`` this is a standalone script (no
pytest-benchmark session) so the CI smoke run stays cheap.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for _helpers
from _helpers import RESULTS_DIR, emit, emit_bench_json

from repro.core.batch import batch_recommend
from repro.core.curation import CurationConfig, curate, fast_curate
from repro.core.model import GraphExModel
from repro.core.serialization import load_model, save_model
from repro.data.generator import DEFAULT_PROFILE, TINY_PROFILE, \
    generate_dataset
from repro.eval.reporting import render_table
from repro.search.logs import KeyphraseStat
from repro.search.sessions import SessionSimulator

_PROFILES = {"tiny": TINY_PROFILE, "default": DEFAULT_PROFILE}


def simulate_stats(profile_name: str, n_events: int, seed: int):
    """The end-to-end pipeline input: aggregated keyphrase stats from a
    simulated training window (same path as the CLI/harness)."""
    dataset = generate_dataset(_PROFILES[profile_name])
    simulator = SessionSimulator(dataset.catalog, dataset.queries,
                                 seed=seed)
    log = simulator.run_training_window(n_events=n_events)
    return log.keyphrase_stats()


def synthetic_stats(n_leaves: int, phrases_per_leaf: int, seed: int):
    """A Section IV-G-scale meta category.

    Each leaf draws its phrases from a leaf-local token pool sampled
    from a shared vocabulary, so vocabularies overlap across leaves the
    way marketplace categories do; search counts follow a head-heavy
    distribution so curation thresholds bite realistically.
    """
    rng = np.random.default_rng(seed)
    vocab = np.array([f"tok{i}" for i in range(80 * max(1, n_leaves))])
    stats = []
    for leaf_id in range(1, n_leaves + 1):
        pool = rng.choice(vocab, size=min(400, len(vocab)), replace=False)
        seen = set()
        for _ in range(phrases_per_leaf):
            n = int(rng.integers(1, 7))
            text = " ".join(rng.choice(pool, size=n, replace=False))
            if text in seen:
                continue
            seen.add(text)
            stats.append(KeyphraseStat(
                text=text, leaf_id=leaf_id,
                search_count=int(rng.zipf(1.3) % 10_000) + 1,
                recall_count=int(rng.integers(1, 1000))))
    return stats


def best_of(fn, repeat: int):
    """Best-of-``repeat`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def assert_identical_models(reference: GraphExModel,
                            fast: GraphExModel) -> None:
    assert fast.leaf_ids == reference.leaf_ids, "leaf ids differ"
    pairs = [(reference.leaf_graph(i), fast.leaf_graph(i))
             for i in reference.leaf_ids]
    if reference.pooled_graph is not None or fast.pooled_graph is not None:
        pairs.append((reference.pooled_graph, fast.pooled_graph))
    for ref_leaf, fast_leaf in pairs:
        assert fast_leaf.word_vocab.tokens == ref_leaf.word_vocab.tokens
        assert np.array_equal(fast_leaf.graph.indptr, ref_leaf.graph.indptr)
        assert np.array_equal(fast_leaf.graph.indices,
                              ref_leaf.graph.indices)
        assert fast_leaf.label_texts == ref_leaf.label_texts
        assert np.array_equal(fast_leaf.label_lengths,
                              ref_leaf.label_lengths)
        assert np.array_equal(fast_leaf.search_counts,
                              ref_leaf.search_counts)
        assert np.array_equal(fast_leaf.recall_counts,
                              ref_leaf.recall_counts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", choices=["synthetic", "simulated"],
                        default="synthetic")
    parser.add_argument("--leaves", type=int, default=8,
                        help="synthetic: leaf categories")
    parser.add_argument("--phrases-per-leaf", type=int, default=15_000,
                        help="synthetic: keyphrases drawn per leaf")
    parser.add_argument("--profile", choices=_PROFILES, default="default",
                        help="simulated: dataset profile")
    parser.add_argument("--events", type=int, default=400_000,
                        help="simulated: training-window events")
    parser.add_argument("--min-search-count", type=int, default=2)
    parser.add_argument("--min-keyphrases", type=int, default=300)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--executor",
                        choices=["serial", "thread", "process",
                                 "cluster"],
                        default=None,
                        help="shard substrate for the fast row; "
                             "'process' and 'cluster' additionally get "
                             "their own comparison row against the "
                             "thread baseline (bit-identical model)")
    parser.add_argument("--parallel", choices=["thread", "process"],
                        default="thread",
                        help="legacy alias of --executor; ignored when "
                             "--executor is given")
    parser.add_argument("--process-workers", type=int, default=0,
                        help="workers for the process/cluster row "
                             "(default: max(2, --workers))")
    parser.add_argument("--pooled", action="store_true",
                        help="also build the pooled all-leaves graph")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=43)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit nonzero if the construct speedup "
                             "falls below this")
    args = parser.parse_args(argv)

    if args.dataset == "synthetic":
        stats = synthetic_stats(args.leaves, args.phrases_per_leaf,
                                args.seed)
        world = (f"synthetic, {args.leaves} leaves x "
                 f"{args.phrases_per_leaf} draws")
    else:
        stats = simulate_stats(args.profile, args.events, args.seed)
        world = f"{args.profile} profile, {args.events} events"
    config = CurationConfig(min_search_count=args.min_search_count,
                            min_keyphrases=args.min_keyphrases,
                            floor_search_count=2)
    print(f"world: {len(stats)} keyphrase stats ({world})")

    cur_ref_time, curated_ref = best_of(
        lambda: curate(stats, config, engine="reference"), args.repeat)
    cur_fast_time, curated_fast = best_of(
        lambda: fast_curate(stats, config), args.repeat)
    if (curated_ref.effective_threshold != curated_fast.effective_threshold
            or list(curated_ref.leaves) != list(curated_fast.leaves)
            or any(curated_ref.leaves[i].texts != curated_fast.leaves[i].texts
                   for i in curated_ref.leaves)):
        print("CURATION MISMATCH between engines")
        return 1

    n_keyphrases = curated_ref.n_keyphrases
    print(f"curated: {n_keyphrases} keyphrases across "
          f"{len(curated_ref.leaves)} leaves "
          f"(threshold {curated_ref.effective_threshold})")

    build_ref_time, model_ref = best_of(
        lambda: GraphExModel.construct(curated_ref, builder="reference",
                                       build_pooled=args.pooled),
        args.repeat)
    build_fast_time, model_fast = best_of(
        lambda: GraphExModel.construct(curated_fast, builder="fast",
                                       build_pooled=args.pooled,
                                       workers=args.workers),
        args.repeat)
    assert_identical_models(model_ref, model_fast)

    executor = args.executor if args.executor is not None \
        else args.parallel
    build_proc_time = None
    process_workers = args.process_workers or max(2, args.workers)
    if executor in ("process", "cluster"):
        if executor == "cluster":
            from repro.core.execution import ClusterExecutor

            backend = ClusterExecutor.local(workers=process_workers)
        else:
            backend = executor
        try:
            build_proc_time, model_proc = best_of(
                lambda: GraphExModel.construct(
                    curated_fast, builder="fast",
                    build_pooled=args.pooled,
                    workers=process_workers, executor=backend),
                args.repeat)
        finally:
            if not isinstance(backend, str):
                backend.close()
        assert_identical_models(model_ref, model_proc)

    # The measurement loop the execution plane closes: build once on
    # the char-count proxy while *recording* per-leaf wall clock, then
    # plan again on the recorded CostModel.  rebalance_gain is the
    # makespan ratio of the two plans under observed costs (> 1 means
    # the fed-back plan shrank the critical-path shard), and the
    # fed-back build must stay bit-identical — feedback moves work
    # between shards, never changes its result.
    from repro.core.execution import (ThreadShardExecutor,
                                      plan_rebalance_gain)
    from repro.core.sharding import ShardPlan

    from repro.obs import MetricsRegistry

    rebalance_workers = max(2, args.workers)
    recorder = ThreadShardExecutor(rebalance_workers,
                                   metrics=MetricsRegistry())
    GraphExModel.construct(curated_fast, builder="fast",
                           build_pooled=args.pooled, executor=recorder)
    proxy = [(leaf_id, sum(map(len, leaf.texts)) + 1)
             for leaf_id, leaf in curated_fast.leaves.items()
             if len(leaf) > 0]
    rebalance_gain = plan_rebalance_gain(
        recorder.cost_model, proxy, rebalance_workers)
    proxy_plan = ShardPlan.for_construction(curated_fast,
                                            rebalance_workers)
    fed_plan = ShardPlan.for_construction(
        curated_fast, rebalance_workers,
        cost_model=recorder.cost_model)
    model_fed = GraphExModel.construct(
        curated_fast, builder="fast", build_pooled=args.pooled,
        executor=ThreadShardExecutor(rebalance_workers,
                                     cost_model=recorder.cost_model))
    assert_identical_models(model_ref, model_fed)
    gain_text = "n/a (nothing to rebalance)" if rebalance_gain is None \
        else f"{rebalance_gain:.3f}x"
    print(f"rebalance gain (observed-cost plan vs char proxy, "
          f"{rebalance_workers} shards): {gain_text}; "
          f"partition moved: {fed_plan.shards != proxy_plan.shards}; "
          f"fed-back model verified bit-identical")

    # End-to-end spot check: the built models serve identical output.
    requests = [(i, stat.text, stat.leaf_id)
                for i, stat in enumerate(stats[:500])]
    expected = batch_recommend(model_ref, requests, k=10)
    if batch_recommend(model_fast, requests, k=10) != expected:
        print("MODEL MISMATCH: built models serve different output")
        return 1

    # Model-open latency: persist once as a format-3 artifact, then
    # time a full copied load against a zero-copy mmap open.  The mmap
    # open touches only metadata (arrays stay file-backed, strings
    # decode lazily), so it should win by orders of magnitude — and
    # its model must serve byte-identically before the number counts.
    artifact = Path(tempfile.mkdtemp(prefix="graphex-bench-model-"))
    try:
        save_model(model_fast, artifact / "model", format_version=3)
        open_copied_time, model_copied = best_of(
            lambda: load_model(artifact / "model"), args.repeat)
        open_mmap_time, model_mapped = best_of(
            lambda: load_model(artifact / "model", mmap=True),
            args.repeat)
        if batch_recommend(model_mapped, requests, k=10) != expected \
                or batch_recommend(model_copied, requests, k=10) \
                != expected:
            print("MODEL MISMATCH: reopened artifact serves "
                  "different output")
            return 1
    finally:
        shutil.rmtree(artifact, ignore_errors=True)
    open_speedup = open_copied_time / open_mmap_time if open_mmap_time \
        else float("inf")

    cur_speedup = cur_ref_time / cur_fast_time if cur_fast_time \
        else float("inf")
    build_speedup = build_ref_time / build_fast_time if build_fast_time \
        else float("inf")
    total_ref = cur_ref_time + build_ref_time
    total_fast = cur_fast_time + build_fast_time
    rows = [
        ["curate/reference", cur_ref_time * 1e3,
         len(stats) / cur_ref_time, 1.0],
        ["curate/fast", cur_fast_time * 1e3,
         len(stats) / cur_fast_time, cur_speedup],
        ["construct/reference", build_ref_time * 1e3,
         n_keyphrases / build_ref_time, 1.0],
        ["construct/fast", build_fast_time * 1e3,
         n_keyphrases / build_fast_time, build_speedup],
        ["pipeline/reference", total_ref * 1e3,
         n_keyphrases / total_ref, 1.0],
        ["pipeline/fast", total_fast * 1e3,
         n_keyphrases / total_fast, total_ref / total_fast],
        ["open/copied", open_copied_time * 1e3,
         n_keyphrases / open_copied_time, 1.0],
        ["open/mmap", open_mmap_time * 1e3,
         n_keyphrases / open_mmap_time, open_speedup],
    ]
    if build_proc_time is not None:
        rows.insert(4, [f"construct/{executor} x{process_workers}",
                        build_proc_time * 1e3,
                        n_keyphrases / build_proc_time,
                        build_ref_time / build_proc_time
                        if build_proc_time else float("inf")])
        print(f"{executor} speedup over thread path: "
              f"{build_fast_time / build_proc_time:.2f}x "
              f"({process_workers} workers; >1x needs multiple cores)")
    table = render_table(
        ["stage", "time (ms)", "keyphrases/s", "speedup"], rows,
        title=f"Model-build bake-off — {n_keyphrases} keyphrases, "
              f"{model_ref.n_leaves} leaves, workers={args.workers}, "
              f"pooled={args.pooled} (models verified bit-identical)")
    RESULTS_DIR.mkdir(exist_ok=True)
    emit(RESULTS_DIR, "model_build", table)
    # Machine-readable artifact so the perf trajectory is tracked
    # across PRs (CI asserts it parses and the models were verified).
    emit_bench_json(RESULTS_DIR, "model_build", {
        "verified_identical": True,   # bit-identical models + served spot check
        "workers": args.workers,
        "executor": executor,
        "parallel": args.parallel,
        "rebalance_gain": rebalance_gain,
        "rebalance_shards": rebalance_workers,
        "n_keyphrases": n_keyphrases,
        "n_stats": len(stats),
        "throughput": {row[0]: row[2] for row in rows},
        "speedup": {row[0]: row[3] for row in rows},
        "model_open_latency": {
            "copied_ms": open_copied_time * 1e3,
            "mmap_ms": open_mmap_time * 1e3,
            "speedup": open_speedup,
        },
        # The recording build's registry snapshot: per-shard construct
        # timings and plan-shape gauges for the rebalance experiment.
        "metrics": recorder.metrics.snapshot(),
    })

    if build_speedup < args.min_speedup:
        print(f"construct speedup {build_speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
