"""Ablation — token-match widening via stemming (Section IV-F1).

The paper: "We used a proprietary stemming function for words to increase
the reach of token matches" and reports that fancier subword matching
"increased the inference latency without too much improvement".  This
bench compares the default tokenizer against the light stemmer: candidate
reach (matched labels per item) must not shrink, relevance should hold.
"""

from __future__ import annotations

import time

from repro.core import GraphExModel, curate
from repro.core.inference import enumerate_candidates
from repro.core.tokenize import DEFAULT_TOKENIZER, STEMMING_TOKENIZER
from repro.eval.metrics import judge_model_predictions
from repro.eval.reporting import render_table

from _helpers import emit

META = "CAT_1"


def _evaluate(experiment, tokenizer, label):
    curated = curate(experiment.keyphrase_stats(META),
                     experiment.config.curation)
    model = GraphExModel.construct(curated, tokenizer=tokenizer)
    items = experiment.test_items(META)

    reach = 0
    start = time.perf_counter()
    predictions = {}
    for item in items:
        graph = model.leaf_graph(item.leaf_id)
        if graph is not None:
            labels, _c, _n = enumerate_candidates(
                graph, tokenizer(item.title))
            reach += len(labels)
        predictions[item.item_id] = [
            rec.text for rec in model.recommend(
                item.title, item.leaf_id, k=10, hard_limit=20)]
    elapsed = time.perf_counter() - start

    titles = {item.item_id: item.title for item in items}
    judged = judge_model_predictions(label, predictions, titles,
                                     experiment.judge,
                                     experiment.head_classifier(META))
    return {
        "label": label,
        "rp": judged.rp,
        "reach": reach / max(1, len(items)),
        "ms_per_item": 1e3 * elapsed / max(1, len(items)),
    }


def _compute(experiment):
    plain = _evaluate(experiment, DEFAULT_TOKENIZER, "no stemming")
    stemmed = _evaluate(experiment, STEMMING_TOKENIZER, "light stemming")
    return plain, stemmed


def test_ablation_stemming(experiment, results_dir, benchmark):
    plain, stemmed = benchmark.pedantic(_compute, args=(experiment,),
                                        rounds=1, iterations=1)
    table = render_table(
        ["tokenizer", "RP", "candidate reach/item", "ms/item"],
        [[r["label"], r["rp"], r["reach"], r["ms_per_item"]]
         for r in (plain, stemmed)],
        title="Ablation — stemming for token-match reach "
              "(Section IV-F1) on CAT_1")
    emit(results_dir, "ablation_stemming", table)

    # Stemming can only merge surface forms, so candidate reach per item
    # must not shrink, and relevance should stay in the same band.
    assert stemmed["reach"] >= plain["reach"] * 0.95
    assert abs(stemmed["rp"] - plain["rp"]) < 0.15
