"""Shared helpers for the table/figure benches."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Meta categories in paper order.
METAS = ["CAT_1", "CAT_2", "CAT_3"]

#: Model display order used by every table (GraphEx last, as in Table III).
MODEL_ORDER = ["fastText", "SL-emb", "SL-query", "Graphite", "RE", "GraphEx"]


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
