"""Shared helpers for the table/figure benches."""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Meta categories in paper order.
METAS = ["CAT_1", "CAT_2", "CAT_3"]

#: Model display order used by every table (GraphEx last, as in Table III).
MODEL_ORDER = ["fastText", "SL-emb", "SL-query", "Graphite", "RE", "GraphEx"]


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_bench_json(results_dir: Path, name: str, payload: dict) -> Path:
    """Persist a machine-readable bench result as ``BENCH_<name>.json``.

    The perf-tracking contract across PRs (asserted by the CI smoke):
    every payload carries ``bench`` (the name), ``verified_identical``
    (the output-equality check the human-readable table reports),
    ``workers``, and a ``throughput`` mapping of column name to
    items/s, alongside whatever bench-specific fields are useful.
    """
    payload = {"bench": name, **payload}
    for key in ("verified_identical", "workers", "throughput"):
        if key not in payload:
            raise ValueError(f"bench payload missing {key!r}")
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"machine-readable result -> {path}")
    return path
