"""Ablation — per-leaf-category graphs vs one pooled meta graph.

Section III-F argues separate leaf graphs "help in recommending more
relevant keyphrases" because items and keyphrases in a leaf belong to the
same product family.  This bench quantifies that: the same curated
keyphrases served through per-leaf graphs vs a single pooled graph.
"""

from __future__ import annotations

from repro.core import GraphExModel, curate
from repro.eval.metrics import judge_model_predictions
from repro.eval.reporting import render_table

from _helpers import METAS, emit


def _evaluate(experiment, meta, use_pooled):
    curated = curate(experiment.keyphrase_stats(meta),
                     experiment.config.curation)
    model = GraphExModel.construct(curated, build_pooled=use_pooled)
    items = experiment.test_items(meta)
    predictions = {
        item.item_id: [
            rec.text for rec in model.recommend(
                item.title, item.leaf_id, k=10, hard_limit=20,
                use_pooled=use_pooled)]
        for item in items
    }
    titles = {item.item_id: item.title for item in items}
    return judge_model_predictions(
        "pooled" if use_pooled else "per-leaf", predictions, titles,
        experiment.judge, experiment.head_classifier(meta))


def _compute(experiment):
    rows = []
    shape = {}
    for meta in METAS:
        per_leaf = _evaluate(experiment, meta, use_pooled=False)
        pooled = _evaluate(experiment, meta, use_pooled=True)
        shape[meta] = (per_leaf.rp, pooled.rp)
        rows.append([meta, "per-leaf", per_leaf.rp, per_leaf.hp,
                     per_leaf.total / max(1, per_leaf.n_items)])
        rows.append([meta, "pooled", pooled.rp, pooled.hp,
                     pooled.total / max(1, pooled.n_items)])
    return rows, shape


def test_ablation_pooled_graphs(experiment, results_dir, benchmark):
    rows, shape = benchmark.pedantic(_compute, args=(experiment,),
                                     rounds=1, iterations=1)
    table = render_table(
        ["category", "graph layout", "RP", "HP", "preds/item"], rows,
        title="Ablation — per-leaf graphs vs pooled meta graph "
              "(Section III-F claim)")
    emit(results_dir, "ablation_pooled_graphs", table)

    # Per-leaf graphs are at least as relevant as the pooled graph in
    # every category (leaf isolation blocks cross-product candidates).
    for meta, (per_leaf_rp, pooled_rp) in shape.items():
        assert per_leaf_rp >= pooled_rp - 0.02
    assert any(per > pooled for per, pooled in shape.values())
