"""Table III — RP / HP / RRR / RHR for all six models on all categories.

Paper (CAT 1): GraphEx RP 56.4% / HP 26.5%; every other model's RRR and
RHR < 1 (RE comes closest at RRR 0.95).  Reproduction targets the ordinal
shape — see EXPERIMENTS.md for the honest divergences (Graphite is
stronger in simulation because simulated clicks are oracle-consistent).
"""

from __future__ import annotations

from repro.eval.metrics import relative_head_ratio, relative_relevant_ratio
from repro.eval.reporting import render_table

from _helpers import METAS, MODEL_ORDER, emit


def _compute(experiment):
    rows = []
    for meta in METAS:
        judged = experiment.judged(meta)
        reference = judged["GraphEx"]
        for name in MODEL_ORDER:
            j = judged[name]
            rows.append([
                meta, name, j.rp, j.hp,
                relative_relevant_ratio(j, reference),
                relative_head_ratio(j, reference),
            ])
    return rows


def test_table3_model_comparison(experiment, results_dir, benchmark):
    rows = benchmark.pedantic(_compute, args=(experiment,),
                              rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "RP", "HP", "RRR (vs GraphEx)",
         "RHR (vs GraphEx)"],
        rows,
        title="Table III — relevance/head metrics "
              "(RRR/RHR computed w.r.t. GraphEx, as in the paper)")
    emit(results_dir, "table3_model_comparison", table)

    by_key = {(r[0], r[1]): r for r in rows}
    for meta in METAS:
        # GraphEx's self-ratios are 1 by definition.
        assert by_key[(meta, "GraphEx")][4] == 1.0
        # RE has the highest RP (few, click-true predictions) but its
        # RRR stays below 1: it cannot out-produce GraphEx in volume.
        assert by_key[(meta, "RE")][2] \
            == max(by_key[(meta, m)][2] for m in ("RE", "SL-query",
                                                  "SL-emb", "fastText"))
        assert by_key[(meta, "RE")][4] < 1.0
        # fastText has the lowest RP (tail-flooding, paper Section I-A1).
        assert by_key[(meta, "fastText")][2] \
            == min(by_key[(meta, m)][2] for m in MODEL_ORDER)
    # On the flagship large category, GraphEx out-delivers the
    # similar-listing and lookup models on head keyphrases (RHR < 1).
    for other in ("RE", "SL-query", "SL-emb", "fastText"):
        assert by_key[("CAT_1", other)][5] < 1.0
