"""Throughput bake-off: vectorized leaf-batched engine vs scalar loop.

Runs the same large batch through ``engine="reference"`` (per-item
``model.recommend`` loop) and ``engine="fast"``
(:class:`repro.core.fast_inference.LeafBatchRunner`), verifies the two
outputs are element-wise identical, and reports items/s plus the
speedup.  The acceptance target for the engine is >= 3x on a >= 5k-item
batch; CI runs a tiny smoke profile of the same script.

``--executor`` picks the fast engine's shard substrate (``--parallel``
is the legacy alias): ``serial``/``thread`` run in-process, while
``process`` (:class:`repro.core.execution.ProcessShardExecutor`) and
``cluster`` (a self-contained localhost fleet via
:meth:`repro.core.execution.ClusterExecutor.local`) each get an extra
comparison column against the thread baseline — measured, not
asserted.  Those columns include pool/fleet start-up and model
shipping, so they are honest end-to-end numbers; they need multiple
physical cores to win.

Usage::

    PYTHONPATH=src python benchmarks/bench_fast_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_fast_engine.py \
        --executor process --workers 4                # + process column
    PYTHONPATH=src python benchmarks/bench_fast_engine.py --items 800 --repeat 1

Unlike the figure/table benches this is a standalone script (no
pytest-benchmark session needed) so the CI smoke run stays cheap.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for _helpers
from _helpers import RESULTS_DIR, emit, emit_bench_json

from repro.core.batch import batch_recommend
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.model import GraphExModel
from repro.eval.reporting import render_table


def build_world(n_leaves: int, phrases_per_leaf: int, n_items: int,
                seed: int):
    """A synthetic meta category plus a batch of title requests.

    Titles are composed from each leaf's phrase tokens plus out-of-vocab
    noise, so enumeration sees realistic hit rates; a slice of requests
    targets unknown leaves to exercise the empty path.
    """
    rng = np.random.default_rng(seed)
    vocab = np.array([f"tok{i}" for i in range(60 * max(1, n_leaves))])
    leaves = {}
    leaf_tokens = {}
    for leaf_id in range(1, n_leaves + 1):
        pool = rng.choice(vocab, size=60, replace=False)
        leaf = CuratedLeaf(leaf_id=leaf_id)
        seen = set()
        for _ in range(phrases_per_leaf):
            n = int(rng.integers(1, 6))
            text = " ".join(rng.choice(pool, size=n, replace=False))
            if text in seen:
                continue
            seen.add(text)
            leaf.add(text, int(rng.integers(1, 1000)),
                     int(rng.integers(1, 1000)))
        leaves[leaf_id] = leaf
        leaf_tokens[leaf_id] = pool
    curated = CuratedKeyphrases(leaves=leaves, effective_threshold=1,
                                config=CurationConfig(min_search_count=1))
    model = GraphExModel.construct(curated, build_pooled=True)

    requests = []
    for item_id in range(n_items):
        leaf_id = int(rng.integers(1, n_leaves + 2))  # +1 unknown leaf
        pool = leaf_tokens.get(leaf_id, vocab)
        n = int(rng.integers(4, 13))
        words = list(rng.choice(pool, size=min(n, len(pool)),
                                replace=False))
        if rng.random() < 0.5:
            words.append("oov" + str(rng.integers(0, 50)))
        requests.append((item_id, " ".join(words), leaf_id))
    return model, requests


def time_engine(model, requests, engine: str, k: int, hard_limit,
                workers: int, repeat: int, executor="thread"):
    """Best-of-``repeat`` wall time and the (last) result dict."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = batch_recommend(model, requests, k=k,
                                 hard_limit=hard_limit, workers=workers,
                                 engine=engine, executor=executor)
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=6000)
    parser.add_argument("--leaves", type=int, default=12)
    parser.add_argument("--phrases-per-leaf", type=int, default=400)
    parser.add_argument("-k", type=int, default=20)
    parser.add_argument("--hard-limit", type=int, default=40)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--executor",
                        choices=["serial", "thread", "process",
                                 "cluster"],
                        default=None,
                        help="shard substrate for the fast column; "
                             "'process' and 'cluster' additionally get "
                             "their own comparison column against the "
                             "thread baseline (identical output)")
    parser.add_argument("--parallel", choices=["thread", "process"],
                        default="thread",
                        help="legacy alias of --executor; ignored when "
                             "--executor is given")
    parser.add_argument("--process-workers", type=int, default=0,
                        help="workers for the process/cluster column "
                             "(default: max(2, --workers))")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit nonzero if fast/reference speedup "
                             "falls below this")
    args = parser.parse_args(argv)

    model, requests = build_world(args.leaves, args.phrases_per_leaf,
                                  args.items, args.seed)
    print(f"world: {model.n_leaves} leaves, {model.n_keyphrases} "
          f"keyphrases, {len(requests)} requests")

    executor = args.executor if args.executor is not None \
        else args.parallel

    ref_time, ref_out = time_engine(model, requests, "reference", args.k,
                                    args.hard_limit, args.workers,
                                    args.repeat)
    baseline = executor if executor in ("serial", "thread") else "thread"
    fast_time, fast_out = time_engine(model, requests, "fast", args.k,
                                      args.hard_limit, args.workers,
                                      args.repeat, executor=baseline)

    if ref_out != fast_out:
        diff = [i for i in ref_out if ref_out[i] != fast_out[i]]
        print(f"ENGINE MISMATCH on {len(diff)} items, e.g. {diff[:3]}")
        return 1

    # Telemetry overhead column: same engine, same substrate, but the
    # executor records into a live MetricsRegistry instead of the
    # default NullRegistry.  Instrumentation must be cheap (the ISSUE
    # budget is 3%) and semantics-neutral — the output is verified
    # identical too.  Timing at this granularity flakes, so on an
    # apparent overspend both columns are re-measured (best-of) a few
    # times before the number is trusted.
    from repro.core.execution import resolve_executor
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    telemetry_executor = resolve_executor(baseline, workers=args.workers,
                                          metrics=registry)
    telem_time, telem_out = time_engine(model, requests, "fast", args.k,
                                        args.hard_limit, args.workers,
                                        args.repeat,
                                        executor=telemetry_executor)
    if telem_out != ref_out:
        diff = [i for i in ref_out if ref_out[i] != telem_out[i]]
        print(f"TELEMETRY MISMATCH on {len(diff)} items, "
              f"e.g. {diff[:3]}")
        return 1
    for _ in range(3):
        if telem_time <= fast_time * 1.03:
            break
        retry_off, _ = time_engine(model, requests, "fast", args.k,
                                   args.hard_limit, args.workers,
                                   args.repeat, executor=baseline)
        retry_on, _ = time_engine(model, requests, "fast", args.k,
                                  args.hard_limit, args.workers,
                                  args.repeat,
                                  executor=telemetry_executor)
        fast_time = min(fast_time, retry_off)
        telem_time = min(telem_time, retry_on)
    telemetry_overhead = telem_time / fast_time if fast_time \
        else float("inf")

    speedup = ref_time / fast_time if fast_time else float("inf")
    rows = [
        ["reference", ref_time * 1e3, len(requests) / ref_time, 1.0],
        [f"fast/{baseline}", fast_time * 1e3, len(requests) / fast_time,
         speedup],
        [f"fast/{baseline}+telemetry", telem_time * 1e3,
         len(requests) / telem_time,
         ref_time / telem_time if telem_time else float("inf")],
    ]
    if executor in ("process", "cluster"):
        process_workers = args.process_workers or max(2, args.workers)
        if executor == "cluster":
            from repro.core.execution import ClusterExecutor

            backend = ClusterExecutor.local(workers=process_workers)
        else:
            backend = executor
        try:
            proc_time, proc_out = time_engine(
                model, requests, "fast", args.k, args.hard_limit,
                process_workers, args.repeat, executor=backend)
        finally:
            if not isinstance(backend, str):
                backend.close()
        if proc_out != ref_out:
            diff = [i for i in ref_out if ref_out[i] != proc_out[i]]
            print(f"{executor.upper()}-SHARD MISMATCH on {len(diff)} "
                  f"items, e.g. {diff[:3]}")
            return 1
        rows.append([f"fast/{executor} x{process_workers}",
                     proc_time * 1e3, len(requests) / proc_time,
                     ref_time / proc_time if proc_time else float("inf")])
        print(f"{executor} speedup over thread path: "
              f"{fast_time / proc_time:.2f}x "
              f"({process_workers} workers; >1x needs multiple cores)")
    table = render_table(
        ["engine", "batch time (ms)", "items/s", "speedup"], rows,
        title=f"Fast engine bake-off — {len(requests)} items, "
              f"k={args.k}, workers={args.workers} "
              f"(outputs verified identical)")
    RESULTS_DIR.mkdir(exist_ok=True)
    emit(RESULTS_DIR, "fast_engine", table)
    print(f"telemetry overhead: {telemetry_overhead:.4f}x "
          f"(budget 1.03x; registry recorded "
          f"{registry.counter_value('executor.inference.requests', executor=baseline)}"
          f" requests)")
    # Machine-readable artifact so the perf trajectory is tracked
    # across PRs (CI asserts it parses, the outputs were verified, and
    # telemetry stayed inside its overhead budget).
    emit_bench_json(RESULTS_DIR, "fast_engine", {
        "verified_identical": True,
        "workers": args.workers,
        "executor": executor,
        "parallel": args.parallel,
        "items": len(requests),
        "k": args.k,
        "throughput": {row[0]: row[2] for row in rows},
        "speedup": {row[0]: row[3] for row in rows},
        "telemetry_overhead": telemetry_overhead,
        "telemetry_within_budget": telemetry_overhead <= 1.03,
        "metrics": registry.snapshot(),
    })

    if speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
