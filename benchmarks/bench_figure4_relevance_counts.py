"""Figure 4 — average relevant head/tail and irrelevant keyphrases per item.

Paper shape: fastText emits the most predictions (and the most irrelevant
ones); RE emits few, almost all relevant; GraphEx sits in between with a
high relevant count and the largest relevant-head count among cold-start
models.
"""

from __future__ import annotations

from repro.eval.reporting import render_table

from _helpers import METAS, MODEL_ORDER, emit


def _compute(experiment):
    rows = []
    for meta in METAS:
        judged = experiment.judged(meta)
        for name in MODEL_ORDER:
            j = judged[name]
            avg = j.averages_per_item()
            rows.append([
                meta, name,
                avg["relevant_head"], avg["relevant_tail"],
                avg["irrelevant"],
                j.total / max(1, j.n_items),
            ])
    return rows


def test_figure4_relevance_counts(experiment, results_dir, benchmark):
    rows = benchmark.pedantic(_compute, args=(experiment,),
                              rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "avg relevant head", "avg relevant tail",
         "avg irrelevant", "avg total"],
        rows,
        title="Figure 4 — per-item average keyphrase composition")
    emit(results_dir, "figure4_relevance_counts", table)

    by_key = {(r[0], r[1]): r for r in rows}
    for meta in METAS:
        # fastText floods: it has the highest total prediction count.
        totals = {name: by_key[(meta, name)][5] for name in MODEL_ORDER}
        assert totals["fastText"] == max(totals.values())
        # RE reflects clicks back: very few predictions per item.
        assert totals["RE"] == min(totals.values())
        # More predictions come with more irrelevant ones (paper's
        # monotonicity remark): fastText has the most irrelevant.
        irrelevant = {name: by_key[(meta, name)][4]
                      for name in MODEL_ORDER}
        assert irrelevant["fastText"] == max(irrelevant.values())
