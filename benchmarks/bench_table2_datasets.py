"""Table II — dataset statistics per meta category.

Paper (absolute scale): CAT 1 = 200M items / 3.6M keyphrases / 115K
GraphEx keyphrases; CAT 2 = 14M / 0.83M / 252K; CAT 3 = 7M / 0.46M / 47K.
Reproduction target is the *ordering* (CAT 1 > CAT 2 > CAT 3 in items and
click-keyphrase volume) and the curation shrink factor, at laptop scale.
"""

from __future__ import annotations

from repro.core import curate
from repro.eval.reporting import render_table

from _helpers import METAS, emit


def _compute_rows(experiment):
    rows = []
    for meta in METAS:
        n_items = len(experiment.dataset.catalog.items_in_meta(meta))
        stats = experiment.keyphrase_stats(meta)
        # "# Keyphrases" in the paper = unique keyphrases incorporated by
        # the XMC models (all clicked/searched keyphrases).
        n_keyphrases = len(stats)
        curated = curate(stats, experiment.config.curation)
        rows.append([meta, n_items, n_keyphrases, curated.n_keyphrases,
                     curated.effective_threshold])
    return rows


def test_table2_dataset_stats(experiment, results_dir, benchmark):
    rows = benchmark.pedantic(_compute_rows, args=(experiment,),
                              rounds=1, iterations=1)
    table = render_table(
        ["MetaCat", "# Items", "# Keyphrases", "# GraphEx Keyphrases",
         "Effective SC threshold"],
        rows,
        title="Table II — synthetic meta-category statistics "
              "(scaled; paper: 200M/14M/7M items)")
    emit(results_dir, "table2_datasets", table)

    # Reproduction shape: strict large > medium > small ordering.
    items = [row[1] for row in rows]
    keyphrases = [row[2] for row in rows]
    assert items[0] > items[1] > items[2]
    assert keyphrases[0] > keyphrases[2]
    # Curation shrinks the label space substantially (paper: 3-30x).
    for row in rows:
        assert row[3] < row[2]
