"""Shared benchmark fixtures.

One :class:`~repro.eval.harness.Experiment` (the paper's full pipeline on
the default synthetic profile) is simulated once per session and shared by
every table/figure bench.  Rendered tables are written to
``benchmarks/results/`` so EXPERIMENTS.md can cite them verbatim.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval import Experiment

from _helpers import RESULTS_DIR


@pytest.fixture(scope="session")
def experiment() -> Experiment:
    """The shared, fully-prepared default experiment."""
    return Experiment().prepare()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their rendered outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
