"""Table V — precision/recall vs click ground truth, relative to GraphEx.

Paper: using RE's click associations as labels, GraphEx has the lowest
recall of all models (relative recall of others: fastText 1.09, Graphite
1.62, SL-emb 4.01, SL-query 3.43).  Low recall *works in GraphEx's
favour*: its recommendations barely overlap the 100%-recall RE source, so
they survive de-duplication and create incremental impact.
"""

from __future__ import annotations

from repro.eval.metrics import precision_recall
from repro.eval.reporting import render_table

from _helpers import METAS, emit

COMPARED = ["fastText", "Graphite", "SL-emb", "SL-query"]


def _compute(experiment):
    rows = []
    shape = {}
    for meta in METAS:
        predictions = experiment.predictions(meta)
        re_model = experiment.rules_engine(meta)
        truth = {
            item.item_id: list(re_model.ground_truth(item.item_id))
            for item in experiment.test_items(meta)
        }
        truth = {k: v for k, v in truth.items() if v}
        scores = {
            name: precision_recall(
                {i: predictions[name][i] for i in truth}, truth)
            for name in COMPARED + ["GraphEx"]
        }
        gx_precision, gx_recall = scores["GraphEx"]
        shape[meta] = (gx_recall,
                       {name: scores[name][1] for name in COMPARED})
        for name in COMPARED:
            precision, recall = scores[name]
            rows.append([
                meta, name,
                precision / gx_precision if gx_precision else float("inf"),
                recall / gx_recall if gx_recall else float("inf"),
            ])
    return rows, shape


def test_table5_precision_recall(experiment, results_dir, benchmark):
    rows, shape = benchmark.pedantic(_compute, args=(experiment,),
                                     rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "relative precision", "relative recall"],
        [[m, n, round(p, 2) if p != float("inf") else "inf",
          round(r, 2) if r != float("inf") else "inf"]
         for m, n, p, r in rows],
        title="Table V — precision/recall vs RE click ground truth, "
              "relative to GraphEx (paper: GraphEx has the lowest recall)")
    emit(results_dir, "table5_precision_recall", table)

    # Shape: the click-propagating models (SL-query routes through shared
    # clicked queries, Graphite through clicked labels of matched items)
    # retrieve the RE ground truth at least as well as GraphEx, whose
    # label space is deliberately decoupled from clicks.
    for meta, (gx_recall, others) in shape.items():
        assert others["SL-query"] >= gx_recall
        assert others["Graphite"] >= gx_recall * 0.9
