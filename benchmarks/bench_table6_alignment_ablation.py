"""Table VI — alignment-function ablation: WMR vs JAC vs LTA.

Paper (RP %): CAT 1 — 33.6 / 44.5 / 45.8; CAT 2 — 40.8 / 40.8 / 40.8;
CAT 3 — 42.6 / 55.0 / 56.0.  Shape: LTA >= JAC > WMR everywhere, with
LTA and JAC close (they differ only on the risky-extra-token cases).
"""

from __future__ import annotations

from repro.eval.metrics import judge_model_predictions
from repro.eval.reporting import render_table

from _helpers import METAS, emit

ALIGNMENTS = ["wmr", "jac", "lta"]

#: Hard cap under which the ablation is scored.  The paper's GraphEx emits
#: 10-20 predictions; truncation must bind for the ranking function to
#: change the returned *set* (otherwise all alignments return the same
#: pruned candidate group and RP is trivially identical).
ABLATION_K = 12


def _compute(experiment):
    rows = {}
    for meta in METAS:
        items = experiment.test_items(meta)
        titles = {item.item_id: item.title for item in items}
        head = experiment.head_classifier(meta)
        rp = {}
        for alignment in ALIGNMENTS:
            recommender = experiment.build_graphex(meta,
                                                   alignment=alignment)
            predictions = {
                item.item_id: [
                    p.text for p in recommender.recommend(
                        item.item_id, item.title, item.leaf_id,
                        k=ABLATION_K)]
                for item in items
            }
            judged = judge_model_predictions(
                f"GraphEx-{alignment}", predictions, titles,
                experiment.judge, head)
            rp[alignment] = judged.rp
        rows[meta] = rp
    return rows


def test_table6_alignment_ablation(experiment, results_dir, benchmark):
    rows = benchmark.pedantic(_compute, args=(experiment,),
                              rounds=1, iterations=1)
    table = render_table(
        ["category", "WMR RP", "JAC RP", "LTA RP"],
        [[meta, rows[meta]["wmr"], rows[meta]["jac"], rows[meta]["lta"]]
         for meta in METAS],
        title="Table VI — relevant proportion by alignment function "
              "(paper: LTA >= JAC > WMR)")
    emit(results_dir, "table6_alignment_ablation", table)

    for meta in METAS:
        rp = rows[meta]
        # LTA is never beaten by either alternative (paper: LTA >= JAC >
        # WMR; ties allowed — CAT 2 ties exactly in the paper).  The
        # JAC-vs-WMR order does not reproduce in the synthetic world:
        # its relevant keyphrases are mostly full title-subsets, which
        # WMR scores perfectly — recorded in EXPERIMENTS.md.
        assert rp["lta"] >= rp["jac"] - 1e-9
        assert rp["lta"] >= rp["wmr"] - 5e-3
    # LTA strictly beats JAC somewhere (the ablation has teeth).
    assert any(rows[m]["lta"] > rows[m]["jac"] for m in METAS)
