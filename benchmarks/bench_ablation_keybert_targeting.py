"""Ablation — Table I's targeting claim, with teeth.

Related Work (Section II) criticises n-gram extractors (keyBERT): nothing
guarantees a generated keyphrase "be in the universe of queries that
buyers are searching for", and exact-match auctions make untargetable
keyphrases worthless (Challenge I-A4).  GraphEx targets 100% by
construction.  This bench measures the actual targeting rate of a
keyBERT-style extractor on the same items.
"""

from __future__ import annotations

from repro.baselines import KeyBERTLike
from repro.eval.reporting import render_table

from _helpers import METAS, emit


def _compute(experiment):
    rows = []
    shape = {}
    # The universe of queries buyers search (site-wide: the engine may
    # attribute a query to a leaf outside its origin meta).
    site_universe = {query.text for query in experiment.dataset.queries}
    for meta in METAS:
        universe = site_universe
        data = experiment.training_data(meta)
        extractor = KeyBERTLike(data, diversity_penalty=0.0)
        graphex = experiment.models(meta)["GraphEx"]

        items = experiment.test_items(meta)
        kb_hits = kb_total = 0
        gx_hits = gx_total = 0
        for item in items:
            kb_preds = extractor.recommend(item.item_id, item.title,
                                           item.leaf_id, k=15)
            kb_total += len(kb_preds)
            kb_hits += sum(1 for p in kb_preds if p.text in universe)
            gx_preds = graphex.recommend(item.item_id, item.title,
                                         item.leaf_id, k=15)
            gx_total += len(gx_preds)
            gx_hits += sum(1 for p in gx_preds if p.text in universe)
        kb_rate = kb_hits / max(1, kb_total)
        gx_rate = gx_hits / max(1, gx_total)
        shape[meta] = (kb_rate, gx_rate)
        rows.append([meta, "keyBERT-like", kb_rate])
        rows.append([meta, "GraphEx", gx_rate])
    return rows, shape


def test_ablation_keybert_targeting(experiment, results_dir, benchmark):
    rows, shape = benchmark.pedantic(_compute, args=(experiment,),
                                     rounds=1, iterations=1)
    table = render_table(
        ["category", "model", "targeting rate (preds that are real "
                              "buyer queries)"],
        rows,
        title="Ablation — exact-match targeting rate "
              "(Table I / Challenge I-A4)")
    emit(results_dir, "ablation_keybert_targeting", table)

    for meta, (kb_rate, gx_rate) in shape.items():
        # GraphEx's label space is the query universe — 100% targeting.
        assert gx_rate == 1.0
        # Vanilla n-gram extraction leaves a substantial untargetable gap.
        assert kb_rate < 0.9
